package rtree

import (
	"sync"
	"sync/atomic"

	"github.com/yask-engine/yask/internal/geo"
)

// epochCounter issues process-wide unique, strictly increasing epoch
// identities. Every publisher stamps one into each arena it publishes,
// and the shard layer draws family-level epochs from the same counter —
// so an epoch value identifies one published state across the whole
// process, which is what lets a result cache key on it and have
// refresh/rebalance/recovery orphan stale entries for free.
var epochCounter atomic.Uint64

// NextEpoch returns the next process-wide epoch identity. Epoch 0 is
// never issued: it marks arenas frozen outside a publisher.
func NextEpoch() uint64 { return epochCounter.Add(1) }

// pubState is one published epoch: the tree, its frozen arena, and the
// index-specific payload (the arena-scoped query wrapper of the index
// package owning the publisher) frozen together. Swapping all three
// behind one pointer is what lets rebuild-style indexes like the
// IR-tree — whose refresh replaces the tree itself — share this
// lifecycle with re-freeze-style indexes.
type pubState[L, A any] struct {
	tree    *Tree[L, A]
	flat    *Flat[L, A]
	payload any
}

// SnapshotPublisher owns the freeze/refresh lifecycle of one Tree: it
// publishes an immutable Flat arena (plus an index-specific payload
// built from it) through an atomic pointer and tracks which tree
// generations were produced by its own (managed) mutation path. Index
// packages embed one publisher each so the lifecycle protocol —
// including the subtle settle-under-lock check — lives in exactly one
// place, for all three index families.
//
// Contract: queries acquire the arena via Snapshot, which fails with a
// *StaleSnapshotError once the tree has been mutated outside Insert/
// Remove/Refresh/Publish. Managed mutations leave the published
// snapshot serving (complete and consistent, minus the buffered
// changes) until Refresh re-freezes off the query path and swaps
// atomically, or Publish swaps in a whole rebuilt epoch.
type SnapshotPublisher[L, A any] struct {
	st atomic.Pointer[pubState[L, A]]
	// mu serializes mutations and refreshes; queries never take it.
	mu sync.Mutex
	// knownGen is the highest generation of the current tree produced by
	// the managed mutation path. The tree moving past it means someone
	// mutated the tree behind the publisher's back.
	knownGen atomic.Uint64
	// wrap builds the payload published alongside each frozen arena.
	// Nil publishes a nil payload.
	wrap func(*Flat[L, A]) any
	// thaw, set only by NewMappedPublisher, rebuilds a live Tree from a
	// mapped arena's entries on the first managed mutation. While the
	// published state is mapped (pubState.tree == nil) the snapshot is
	// never stale and Refresh is a no-op.
	thaw func(*Flat[L, A]) *Tree[L, A]
}

// NewSnapshotPublisher freezes the tree's current content and returns a
// publisher serving it. wrap, if non-nil, is called with every arena
// the publisher freezes — at construction, on Refresh, and on Publish —
// and its result is published atomically with the arena; index packages
// use it to attach their arena-scoped query wrappers.
func NewSnapshotPublisher[L, A any](t *Tree[L, A], wrap func(*Flat[L, A]) any) *SnapshotPublisher[L, A] {
	p := &SnapshotPublisher[L, A]{wrap: wrap}
	p.publishLocked(t)
	return p
}

// NewMappedPublisher publishes a Flat loaded from an arena file
// (BuildFlat) without any source tree: queries serve the mapped columns
// directly and the snapshot is never stale. The mapped state lasts
// until the first managed mutation, which calls thaw to rebuild a live
// Tree from the arena's entries and publishes its frozen epoch — from
// then on the publisher behaves exactly like one built over a tree.
// Refresh on a still-mapped state is a no-op: there is nothing newer to
// freeze.
func NewMappedPublisher[L, A any](f *Flat[L, A], wrap func(*Flat[L, A]) any, thaw func(*Flat[L, A]) *Tree[L, A]) *SnapshotPublisher[L, A] {
	p := &SnapshotPublisher[L, A]{wrap: wrap, thaw: thaw}
	f.epoch = NextEpoch()
	st := &pubState[L, A]{flat: f}
	if p.wrap != nil {
		st.payload = p.wrap(f)
	}
	p.st.Store(st)
	return p
}

// Mapped reports whether the current published state is a mapped arena
// with no live tree behind it (no managed mutation has thawed it yet).
func (p *SnapshotPublisher[L, A]) Mapped() bool { return p.st.Load().tree == nil }

// thawLocked returns the current tree, rebuilding one from the mapped
// arena on first need. Callers hold mu.
func (p *SnapshotPublisher[L, A]) thawLocked() *Tree[L, A] {
	st := p.st.Load()
	if st.tree != nil {
		return st.tree
	}
	t := p.thaw(st.flat)
	p.publishLocked(t)
	return t
}

// publishLocked freezes t and publishes the new epoch. Callers hold mu
// (or, at construction, exclusive access).
func (p *SnapshotPublisher[L, A]) publishLocked(t *Tree[L, A]) {
	f := t.Freeze()
	f.epoch = NextEpoch()
	st := &pubState[L, A]{tree: t, flat: f}
	if p.wrap != nil {
		st.payload = p.wrap(f)
	}
	p.st.Store(st)
	p.knownGen.Store(t.Generation())
}

// Tree returns the underlying tree of the current epoch, or nil while
// the published state is a mapped arena (Mapped). Mutating it directly
// leaves the published snapshot stale and Snapshot will error until
// Refresh.
func (p *SnapshotPublisher[L, A]) Tree() *Tree[L, A] { return p.st.Load().tree }

// Flat returns the current published arena without a freshness check.
func (p *SnapshotPublisher[L, A]) Flat() *Flat[L, A] { return p.st.Load().flat }

// Payload returns the payload published with the current arena, without
// a freshness check.
func (p *SnapshotPublisher[L, A]) Payload() any { return p.st.Load().payload }

// Snapshot returns the published arena and its payload after verifying
// that every tree mutation went through the managed path; it fails with
// a *StaleSnapshotError (matching ErrStaleSnapshot) otherwise.
func (p *SnapshotPublisher[L, A]) Snapshot() (*Flat[L, A], any, error) {
	st := p.st.Load()
	if st.tree == nil {
		// Mapped arena: immutable by construction, never stale.
		return st.flat, st.payload, nil
	}
	if g := st.tree.Generation(); g == p.knownGen.Load() {
		return st.flat, st.payload, nil
	}
	// The mismatch may be a managed mutation caught mid-flight (the tree
	// generation moves before knownGen catches up); settle under the
	// mutation lock, after which only an unmanaged mutation still
	// mismatches.
	p.mu.Lock()
	st = p.st.Load()
	g, known := st.tree.Generation(), p.knownGen.Load()
	p.mu.Unlock()
	if g != known {
		return nil, nil, &StaleSnapshotError{FrozenGen: st.flat.Generation(), TreeGen: g}
	}
	return st.flat, st.payload, nil
}

// Insert adds an item through the managed mutation path; the published
// snapshot keeps serving until Refresh.
func (p *SnapshotPublisher[L, A]) Insert(rect geo.Rect, item L) {
	p.mu.Lock()
	defer p.mu.Unlock()
	t := p.thawLocked()
	t.Insert(rect, item)
	p.knownGen.Store(t.Generation())
}

// Remove deletes one matching item through the managed mutation path
// and reports whether it was present.
func (p *SnapshotPublisher[L, A]) Remove(rect geo.Rect, match func(L) bool) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	t := p.thawLocked()
	ok := t.Delete(rect, match)
	p.knownGen.Store(t.Generation())
	return ok
}

// Refresh re-freezes the current tree and atomically publishes the new
// arena. Concurrent queries keep traversing the old snapshot and pick
// up the new one on their next acquisition.
func (p *SnapshotPublisher[L, A]) Refresh() {
	p.mu.Lock()
	defer p.mu.Unlock()
	t := p.st.Load().tree
	if t == nil {
		// Still serving a mapped arena: no mutations have happened, so
		// there is nothing newer to freeze.
		return
	}
	p.publishLocked(t)
}

// Publish replaces the whole epoch with a freshly built tree — the
// refresh style of corpus-dependent indexes (the IR-tree rebuilds its
// text model and tree together). wrap, if non-nil, replaces the
// publisher's payload builder from this epoch on; the previous tree and
// any direct mutations to it are discarded.
func (p *SnapshotPublisher[L, A]) Publish(t *Tree[L, A], wrap func(*Flat[L, A]) any) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if wrap != nil {
		p.wrap = wrap
	}
	p.publishLocked(t)
}
