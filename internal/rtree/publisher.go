package rtree

import (
	"sync"
	"sync/atomic"

	"github.com/yask-engine/yask/internal/geo"
)

// SnapshotPublisher owns the freeze/refresh lifecycle of one Tree: it
// publishes an immutable Flat arena through an atomic pointer and
// tracks which tree generations were produced by its own (managed)
// mutation path. Index packages embed one publisher each so the
// lifecycle protocol — including the subtle settle-under-lock check —
// lives in exactly one place.
//
// Contract: queries acquire the arena via Snapshot, which fails with a
// *StaleSnapshotError once the tree has been mutated outside Insert/
// Remove/Refresh. Managed mutations leave the published snapshot
// serving (complete and consistent, minus the buffered changes) until
// Refresh re-freezes off the query path and swaps atomically.
type SnapshotPublisher[L, A any] struct {
	tree *Tree[L, A]
	flat atomic.Pointer[Flat[L, A]]
	// mu serializes mutations and refreshes; queries never take it.
	mu sync.Mutex
	// knownGen is the highest tree generation produced by the managed
	// mutation path. The tree moving past it means someone mutated the
	// tree behind the publisher's back.
	knownGen atomic.Uint64
}

// NewSnapshotPublisher freezes the tree's current content and returns a
// publisher serving it.
func NewSnapshotPublisher[L, A any](t *Tree[L, A]) *SnapshotPublisher[L, A] {
	p := &SnapshotPublisher[L, A]{tree: t}
	p.flat.Store(t.Freeze())
	p.knownGen.Store(t.Generation())
	return p
}

// Tree returns the underlying tree. Mutating it directly leaves the
// published snapshot stale and Snapshot will error until Refresh.
func (p *SnapshotPublisher[L, A]) Tree() *Tree[L, A] { return p.tree }

// Flat returns the current published arena without a freshness check.
func (p *SnapshotPublisher[L, A]) Flat() *Flat[L, A] { return p.flat.Load() }

// Snapshot returns the published arena after verifying that every tree
// mutation went through the managed path; it fails with a
// *StaleSnapshotError (matching ErrStaleSnapshot) otherwise.
func (p *SnapshotPublisher[L, A]) Snapshot() (*Flat[L, A], error) {
	f := p.flat.Load()
	if g := p.tree.Generation(); g == p.knownGen.Load() {
		return f, nil
	}
	// The mismatch may be a managed mutation caught mid-flight (the tree
	// generation moves before knownGen catches up); settle under the
	// mutation lock, after which only an unmanaged mutation still
	// mismatches.
	p.mu.Lock()
	f = p.flat.Load()
	g, known := p.tree.Generation(), p.knownGen.Load()
	p.mu.Unlock()
	if g != known {
		return nil, &StaleSnapshotError{FrozenGen: f.Generation(), TreeGen: g}
	}
	return f, nil
}

// Insert adds an item through the managed mutation path; the published
// snapshot keeps serving until Refresh.
func (p *SnapshotPublisher[L, A]) Insert(rect geo.Rect, item L) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.tree.Insert(rect, item)
	p.knownGen.Store(p.tree.Generation())
}

// Remove deletes one matching item through the managed mutation path
// and reports whether it was present.
func (p *SnapshotPublisher[L, A]) Remove(rect geo.Rect, match func(L) bool) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	ok := p.tree.Delete(rect, match)
	p.knownGen.Store(p.tree.Generation())
	return ok
}

// Refresh re-freezes the tree and atomically publishes the new arena.
// Concurrent queries keep traversing the old snapshot and pick up the
// new one on their next acquisition.
func (p *SnapshotPublisher[L, A]) Refresh() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.flat.Store(p.tree.Freeze())
	p.knownGen.Store(p.tree.Generation())
}
