package rtree

import (
	"errors"
	"testing"

	"github.com/yask-engine/yask/internal/geo"
)

func TestGenerationBumpsOnMutation(t *testing.T) {
	tree := New(NoAug[int](), 8)
	if tree.Generation() != 0 {
		t.Fatalf("fresh tree generation %d", tree.Generation())
	}
	p := geo.RectFromPoint(geo.Point{X: 1, Y: 2})
	tree.Insert(p, 7)
	g1 := tree.Generation()
	if g1 == 0 {
		t.Fatal("Insert did not bump the generation")
	}
	// A miss must not bump: nothing changed.
	if tree.Delete(geo.RectFromPoint(geo.Point{X: 9, Y: 9}), func(int) bool { return true }) {
		t.Fatal("unexpected delete hit")
	}
	if tree.Generation() != g1 {
		t.Fatal("failed Delete bumped the generation")
	}
	if !tree.Delete(p, func(v int) bool { return v == 7 }) {
		t.Fatal("delete missed")
	}
	if tree.Generation() == g1 {
		t.Fatal("successful Delete did not bump the generation")
	}
	g2 := tree.Generation()
	tree.BulkLoad([]LeafEntry[int]{{Rect: p, Item: 1}})
	if tree.Generation() == g2 {
		t.Fatal("BulkLoad did not bump the generation")
	}
}

func TestFlatStaleness(t *testing.T) {
	tree := freezeTestTree(t, 200, 8, true)
	f := tree.Freeze()
	if f.Stale() {
		t.Fatal("fresh snapshot reports stale")
	}
	if err := f.CheckFresh(); err != nil {
		t.Fatalf("fresh snapshot CheckFresh = %v", err)
	}
	tree.Insert(RectFromPointForTest(geo.Point{X: 5, Y: 5}), 999)
	if !f.Stale() {
		t.Fatal("snapshot not stale after tree mutation")
	}
	err := f.CheckFresh()
	if err == nil {
		t.Fatal("CheckFresh nil after mutation")
	}
	if !errors.Is(err, ErrStaleSnapshot) {
		t.Fatalf("error %v does not match ErrStaleSnapshot", err)
	}
	var stale *StaleSnapshotError
	if !errors.As(err, &stale) {
		t.Fatalf("error %T is not a *StaleSnapshotError", err)
	}
	if stale.TreeGen <= stale.FrozenGen {
		t.Fatalf("generations %d → %d not increasing", stale.FrozenGen, stale.TreeGen)
	}
	// Re-freezing yields a fresh snapshot again.
	if err := tree.Freeze().CheckFresh(); err != nil {
		t.Fatalf("re-frozen snapshot CheckFresh = %v", err)
	}
}
