package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"github.com/yask-engine/yask/internal/geo"
)

// id is the leaf payload used throughout the tests.
type id int

func randomPoints(rng *rand.Rand, n int) []geo.Point {
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
	}
	return pts
}

func buildByInsert(pts []geo.Point, maxE int) *Tree[id, None] {
	t := New(NoAug[id](), maxE)
	for i, p := range pts {
		t.Insert(geo.RectFromPoint(p), id(i))
	}
	return t
}

func buildByBulk(pts []geo.Point, maxE int) *Tree[id, None] {
	t := New(NoAug[id](), maxE)
	entries := make([]LeafEntry[id], len(pts))
	for i, p := range pts {
		entries[i] = LeafEntry[id]{Rect: geo.RectFromPoint(p), Item: id(i)}
	}
	t.BulkLoad(entries)
	return t
}

func bruteRange(pts []geo.Point, r geo.Rect) map[id]bool {
	out := map[id]bool{}
	for i, p := range pts {
		if r.ContainsPoint(p) {
			out[id(i)] = true
		}
	}
	return out
}

func collectRange(t *Tree[id, None], r geo.Rect) map[id]bool {
	out := map[id]bool{}
	t.Range(r, func(e LeafEntry[id]) bool {
		out[e.Item] = true
		return true
	})
	return out
}

func TestEmptyTree(t *testing.T) {
	tr := New(NoAug[id](), 8)
	if tr.Len() != 0 || tr.Height() != 0 || tr.NodeCount() != 0 {
		t.Fatal("empty tree should have zero size/height/nodes")
	}
	if err := tr.Verify(); err != nil {
		t.Fatal(err)
	}
	if got := tr.KNN(geo.Point{}, 3); got != nil {
		t.Fatalf("KNN on empty = %v", got)
	}
	if !tr.Range(geo.NewRect(geo.Point{X: 0, Y: 0}, geo.Point{X: 1, Y: 1}), func(LeafEntry[id]) bool { return true }) {
		t.Fatal("Range on empty should complete")
	}
}

func TestInsertSmall(t *testing.T) {
	tr := buildByInsert([]geo.Point{{X: 1, Y: 1}, {X: 2, Y: 2}, {X: 3, Y: 3}}, 8)
	if tr.Len() != 3 || tr.Height() != 1 {
		t.Fatalf("Len=%d Height=%d", tr.Len(), tr.Height())
	}
	if err := tr.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertGrowsTree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := randomPoints(rng, 500)
	tr := buildByInsert(pts, 8)
	if tr.Len() != 500 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.Height() < 3 {
		t.Fatalf("expected height >= 3 for 500 pts with fanout 8, got %d", tr.Height())
	}
	if err := tr.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestRangeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := randomPoints(rng, 800)
	for _, build := range []func([]geo.Point, int) *Tree[id, None]{buildByInsert, buildByBulk} {
		tr := build(pts, 16)
		for trial := 0; trial < 50; trial++ {
			r := geo.NewRect(
				geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000},
				geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000},
			)
			got := collectRange(tr, r)
			want := bruteRange(pts, r)
			if len(got) != len(want) {
				t.Fatalf("range size %d, want %d", len(got), len(want))
			}
			for k := range want {
				if !got[k] {
					t.Fatalf("missing id %d", k)
				}
			}
		}
	}
}

func TestRangeEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := buildByInsert(randomPoints(rng, 100), 8)
	count := 0
	complete := tr.Range(geo.NewRect(geo.Point{X: 0, Y: 0}, geo.Point{X: 1000, Y: 1000}), func(LeafEntry[id]) bool {
		count++
		return count < 5
	})
	if complete {
		t.Fatal("early-stopped Range should report incomplete")
	}
	if count != 5 {
		t.Fatalf("visited %d entries, want 5", count)
	}
}

func TestKNNMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := randomPoints(rng, 600)
	for _, build := range []func([]geo.Point, int) *Tree[id, None]{buildByInsert, buildByBulk} {
		tr := build(pts, 16)
		for trial := 0; trial < 30; trial++ {
			q := geo.Point{X: rng.Float64() * 1200, Y: rng.Float64() * 1200}
			k := 1 + rng.Intn(20)
			got := tr.KNN(q, k)
			if len(got) != k {
				t.Fatalf("KNN returned %d, want %d", len(got), k)
			}
			dists := make([]float64, len(pts))
			for i, p := range pts {
				dists[i] = q.Dist(p)
			}
			sort.Float64s(dists)
			for i, nb := range got {
				if diff := nb.Dist - dists[i]; diff > 1e-9 || diff < -1e-9 {
					t.Fatalf("neighbor %d dist %v, want %v", i, nb.Dist, dists[i])
				}
			}
			// Ascending order.
			for i := 1; i < len(got); i++ {
				if got[i].Dist < got[i-1].Dist {
					t.Fatal("KNN result not sorted")
				}
			}
		}
	}
}

func TestKNNMoreThanSize(t *testing.T) {
	tr := buildByInsert([]geo.Point{{X: 0, Y: 0}, {X: 1, Y: 1}}, 8)
	if got := tr.KNN(geo.Point{}, 10); len(got) != 2 {
		t.Fatalf("KNN k>n returned %d", len(got))
	}
}

func TestBulkLoadStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{0, 1, 7, 64, 65, 1000, 5000} {
		pts := randomPoints(rng, n)
		tr := buildByBulk(pts, 64)
		if tr.Len() != n {
			t.Fatalf("n=%d: Len=%d", n, tr.Len())
		}
		if err := tr.Verify(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if n > 0 && n <= 64 && tr.Height() != 1 {
			t.Fatalf("n=%d should fit a single leaf, height=%d", n, tr.Height())
		}
	}
}

func TestBulkLoadUtilization(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tr := buildByBulk(randomPoints(rng, 10000), 64)
	// STR packing should use close to n/maxE leaves.
	nodes := tr.NodeCount()
	minNodes := 10000 / 64
	if nodes > 2*minNodes+10 {
		t.Fatalf("bulk-loaded tree too sparse: %d nodes for 10000 entries", nodes)
	}
}

func TestDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := randomPoints(rng, 300)
	tr := buildByInsert(pts, 8)
	// Delete half the points in random order.
	perm := rng.Perm(300)
	for i, pi := range perm {
		ok := tr.Delete(geo.RectFromPoint(pts[pi]), func(v id) bool { return v == id(pi) })
		if !ok {
			t.Fatalf("delete %d failed", pi)
		}
		if err := tr.Verify(); err != nil {
			t.Fatalf("after delete %d: %v", i, err)
		}
		if i == 149 {
			break
		}
	}
	if tr.Len() != 150 {
		t.Fatalf("Len = %d, want 150", tr.Len())
	}
	// Remaining points must still be findable.
	deleted := map[int]bool{}
	for _, pi := range perm[:150] {
		deleted[pi] = true
	}
	got := collectRange(tr, geo.NewRect(geo.Point{X: -1, Y: -1}, geo.Point{X: 1001, Y: 1001}))
	for i := range pts {
		if deleted[i] && got[id(i)] {
			t.Fatalf("deleted id %d still present", i)
		}
		if !deleted[i] && !got[id(i)] {
			t.Fatalf("surviving id %d missing", i)
		}
	}
}

func TestDeleteMissing(t *testing.T) {
	tr := buildByInsert([]geo.Point{{X: 1, Y: 1}}, 8)
	if tr.Delete(geo.RectFromPoint(geo.Point{X: 9, Y: 9}), func(id) bool { return true }) {
		t.Fatal("delete of absent rect should fail")
	}
	if tr.Delete(geo.RectFromPoint(geo.Point{X: 1, Y: 1}), func(id) bool { return false }) {
		t.Fatal("delete with non-matching predicate should fail")
	}
	if tr.Len() != 1 {
		t.Fatal("failed deletes must not change size")
	}
}

func TestDeleteAll(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pts := randomPoints(rng, 100)
	tr := buildByInsert(pts, 8)
	for i := range pts {
		if !tr.Delete(geo.RectFromPoint(pts[i]), func(v id) bool { return v == id(i) }) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting all", tr.Len())
	}
	if err := tr.Verify(); err != nil {
		t.Fatal(err)
	}
	// Tree must remain usable.
	tr.Insert(geo.RectFromPoint(geo.Point{X: 5, Y: 5}), 999)
	if got := tr.KNN(geo.Point{X: 5, Y: 5}, 1); len(got) != 1 || got[0].Item != 999 {
		t.Fatal("tree unusable after delete-all")
	}
}

func TestMixedInsertDeleteAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tr := New(NoAug[id](), 8)
	live := map[id]geo.Point{}
	next := 0
	for op := 0; op < 3000; op++ {
		if len(live) == 0 || rng.Intn(3) > 0 {
			p := geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
			tr.Insert(geo.RectFromPoint(p), id(next))
			live[id(next)] = p
			next++
		} else {
			// Delete a random live element.
			var victim id
			n := rng.Intn(len(live))
			for k := range live {
				if n == 0 {
					victim = k
					break
				}
				n--
			}
			p := live[victim]
			if !tr.Delete(geo.RectFromPoint(p), func(v id) bool { return v == victim }) {
				t.Fatalf("op %d: delete %d failed", op, victim)
			}
			delete(live, victim)
		}
		if op%500 == 0 {
			if err := tr.Verify(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
		}
	}
	if tr.Len() != len(live) {
		t.Fatalf("Len = %d, oracle has %d", tr.Len(), len(live))
	}
	got := collectRange(tr, geo.NewRect(geo.Point{X: -1, Y: -1}, geo.Point{X: 101, Y: 101}))
	if len(got) != len(live) {
		t.Fatalf("range found %d, oracle has %d", len(got), len(live))
	}
	for k := range live {
		if !got[k] {
			t.Fatalf("live id %d missing from tree", k)
		}
	}
}

func TestStatsCountNodeAccesses(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	tr := buildByBulk(randomPoints(rng, 2000), 16)
	tr.Stats().Reset()
	tr.Range(geo.NewRect(geo.Point{X: 0, Y: 0}, geo.Point{X: 10, Y: 10}), func(LeafEntry[id]) bool { return true })
	small := tr.Stats().NodeAccesses()
	tr.Stats().Reset()
	tr.Range(geo.NewRect(geo.Point{X: 0, Y: 0}, geo.Point{X: 1000, Y: 1000}), func(LeafEntry[id]) bool { return true })
	large := tr.Stats().NodeAccesses()
	if small == 0 || large == 0 {
		t.Fatal("queries should record node accesses")
	}
	if small >= large {
		t.Fatalf("small range touched %d nodes, full scan %d; expected fewer", small, large)
	}
	if large != int64(tr.NodeCount()) {
		t.Fatalf("full-space range touched %d nodes, tree has %d", large, tr.NodeCount())
	}
}

// sumAug tracks the sum of payloads under each node, a simple augmenter
// for which correctness is easy to verify globally.
type sumAug struct{}

func (sumAug) FromLeaf(v id) int  { return int(v) }
func (sumAug) Merge(a, b int) int { return a + b }

func verifySums(t *testing.T, n *Node[id, int]) int {
	t.Helper()
	if n.IsLeaf() {
		want := 0
		for _, e := range n.Entries() {
			want += int(e.Item)
		}
		if n.Aug() != want {
			t.Fatalf("leaf aug %d, want %d", n.Aug(), want)
		}
		return want
	}
	want := 0
	for _, c := range n.Children() {
		want += verifySums(t, c)
	}
	if n.Aug() != want {
		t.Fatalf("node aug %d, want %d", n.Aug(), want)
	}
	return want
}

func TestAugmentationMaintained(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := New[id, int](sumAug{}, 8)
	pts := randomPoints(rng, 400)
	total := 0
	for i, p := range pts {
		tr.Insert(geo.RectFromPoint(p), id(i))
		total += i
	}
	if tr.Root().Aug() != total {
		t.Fatalf("root aug %d, want %d", tr.Root().Aug(), total)
	}
	verifySums(t, tr.Root())

	// Deletion must keep augmentation exact.
	for i := 0; i < 200; i++ {
		if !tr.Delete(geo.RectFromPoint(pts[i]), func(v id) bool { return v == id(i) }) {
			t.Fatalf("delete %d failed", i)
		}
		total -= i
	}
	if tr.Root().Aug() != total {
		t.Fatalf("after deletes root aug %d, want %d", tr.Root().Aug(), total)
	}
	verifySums(t, tr.Root())
}

func TestAugmentationBulkLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	tr := New[id, int](sumAug{}, 16)
	pts := randomPoints(rng, 777)
	entries := make([]LeafEntry[id], len(pts))
	total := 0
	for i, p := range pts {
		entries[i] = LeafEntry[id]{Rect: geo.RectFromPoint(p), Item: id(i)}
		total += i
	}
	tr.BulkLoad(entries)
	if tr.Root().Aug() != total {
		t.Fatalf("root aug %d, want %d", tr.Root().Aug(), total)
	}
	verifySums(t, tr.Root())
}

func TestQuadraticPartitionRespectsMinFill(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 200; trial++ {
		n := 5 + rng.Intn(60)
		minFill := 2 + rng.Intn(n/2-1)
		rects := make([]geo.Rect, n)
		for i := range rects {
			a := geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
			b := geo.Point{X: a.X + rng.Float64()*10, Y: a.Y + rng.Float64()*10}
			rects[i] = geo.NewRect(a, b)
		}
		ga, gb := quadraticPartition(rects, minFill)
		if len(ga)+len(gb) != n {
			t.Fatalf("partition lost rects: %d + %d != %d", len(ga), len(gb), n)
		}
		if len(ga) < minFill || len(gb) < minFill {
			t.Fatalf("partition under min fill: %d/%d < %d", len(ga), len(gb), minFill)
		}
		seen := map[int]bool{}
		for _, i := range append(append([]int{}, ga...), gb...) {
			if seen[i] {
				t.Fatalf("index %d assigned twice", i)
			}
			seen[i] = true
		}
	}
}

func TestDuplicatePointsSupported(t *testing.T) {
	tr := New(NoAug[id](), 4)
	p := geo.Point{X: 5, Y: 5}
	for i := 0; i < 50; i++ {
		tr.Insert(geo.RectFromPoint(p), id(i))
	}
	if tr.Len() != 50 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.Verify(); err != nil {
		t.Fatal(err)
	}
	got := collectRange(tr, geo.RectFromPoint(p))
	if len(got) != 50 {
		t.Fatalf("range on duplicate point found %d", len(got))
	}
	// Delete each by identity.
	for i := 0; i < 50; i++ {
		if !tr.Delete(geo.RectFromPoint(p), func(v id) bool { return v == id(i) }) {
			t.Fatalf("delete dup %d failed", i)
		}
	}
	if tr.Len() != 0 {
		t.Fatal("all duplicates should be gone")
	}
}
