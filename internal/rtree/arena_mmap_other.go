//go:build !unix

package rtree

// mapArenaFile on platforms without mmap support reads the whole file
// into memory: same layout, same verification, one copy. Mapped
// reports false so stats can tell the difference.
func mapArenaFile(path string) (data []byte, unmap func() error, mapped bool, err error) {
	return readArenaFile(path)
}
