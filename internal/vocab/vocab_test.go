package vocab

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
)

func TestInternAssignsDenseIDs(t *testing.T) {
	v := NewVocabulary()
	a := v.Intern("coffee")
	b := v.Intern("wifi")
	c := v.Intern("coffee")
	if a != 0 || b != 1 {
		t.Fatalf("expected dense IDs 0,1; got %d,%d", a, b)
	}
	if c != a {
		t.Fatalf("re-interning returned %d, want %d", c, a)
	}
	if v.Len() != 2 {
		t.Fatalf("Len = %d, want 2", v.Len())
	}
}

func TestInternCaseFolds(t *testing.T) {
	v := NewVocabulary()
	if v.Intern("Coffee") != v.Intern("coffee") || v.Intern("  COFFEE ") != v.Intern("coffee") {
		t.Fatal("case/space variants should intern to the same ID")
	}
}

func TestLookupAndWord(t *testing.T) {
	v := NewVocabulary()
	id := v.Intern("spa")
	if got, ok := v.Lookup("SPA"); !ok || got != id {
		t.Fatalf("Lookup = %d,%v; want %d,true", got, ok, id)
	}
	if _, ok := v.Lookup("sauna"); ok {
		t.Fatal("Lookup of unseen word should fail")
	}
	if v.Word(id) != "spa" {
		t.Fatalf("Word(%d) = %q", id, v.Word(id))
	}
}

func TestWordPanicsOnUnknownID(t *testing.T) {
	v := NewVocabulary()
	defer func() {
		if recover() == nil {
			t.Fatal("Word(99) should panic")
		}
	}()
	v.Word(99)
}

func TestZeroValueVocabularyUsable(t *testing.T) {
	var v Vocabulary
	if v.Intern("pool") != 0 {
		t.Fatal("zero-value vocabulary should work")
	}
}

func TestConcurrentIntern(t *testing.T) {
	v := NewVocabulary()
	words := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				v.Intern(words[j%len(words)])
			}
		}()
	}
	wg.Wait()
	if v.Len() != len(words) {
		t.Fatalf("Len = %d, want %d", v.Len(), len(words))
	}
	// Every word must round-trip.
	for _, w := range words {
		id, ok := v.Lookup(w)
		if !ok || v.Word(id) != w {
			t.Fatalf("round trip failed for %q", w)
		}
	}
}

func TestInternSetSkipsBlank(t *testing.T) {
	v := NewVocabulary()
	s := v.InternSet("wifi", "", "  ", "pool", "wifi")
	if s.Len() != 2 {
		t.Fatalf("set = %v, want 2 elements", s)
	}
}

func TestTokenize(t *testing.T) {
	got := Tokenize("Free Wi-Fi, 24h front-desk & pool!")
	want := []string{"free", "wi", "fi", "24h", "front", "desk", "pool"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
}

func TestInternText(t *testing.T) {
	v := NewVocabulary()
	s := v.InternText("Clean, clean and comfortable.")
	if got := v.Words(s); !reflect.DeepEqual(got, []string{"and", "clean", "comfortable"}) {
		t.Fatalf("InternText words = %v", got)
	}
}

func TestNewKeywordSetCanonicalizes(t *testing.T) {
	s := NewKeywordSet(5, 1, 3, 1, 5, 2)
	want := KeywordSet{1, 2, 3, 5}
	if !s.Equal(want) {
		t.Fatalf("NewKeywordSet = %v, want %v", s, want)
	}
	if !s.Canonical() {
		t.Fatal("result not canonical")
	}
	if NewKeywordSet() != nil {
		t.Fatal("empty NewKeywordSet should be nil")
	}
}

func TestContainsBinarySearch(t *testing.T) {
	s := NewKeywordSet(2, 4, 6, 8)
	for _, id := range []Keyword{2, 4, 6, 8} {
		if !s.Contains(id) {
			t.Errorf("Contains(%d) = false", id)
		}
	}
	for _, id := range []Keyword{0, 1, 3, 5, 7, 9} {
		if s.Contains(id) {
			t.Errorf("Contains(%d) = true", id)
		}
	}
}

func TestSetAlgebra(t *testing.T) {
	a := NewKeywordSet(1, 2, 3, 4)
	b := NewKeywordSet(3, 4, 5, 6)
	if got := a.Intersect(b); !got.Equal(NewKeywordSet(3, 4)) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Union(b); !got.Equal(NewKeywordSet(1, 2, 3, 4, 5, 6)) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Diff(b); !got.Equal(NewKeywordSet(1, 2)) {
		t.Errorf("Diff = %v", got)
	}
	if got := b.Diff(a); !got.Equal(NewKeywordSet(5, 6)) {
		t.Errorf("Diff = %v", got)
	}
	if a.IntersectLen(b) != 2 || a.UnionLen(b) != 6 {
		t.Errorf("IntersectLen/UnionLen = %d/%d", a.IntersectLen(b), a.UnionLen(b))
	}
}

func TestSetAlgebraWithEmpty(t *testing.T) {
	a := NewKeywordSet(1, 2)
	var e KeywordSet
	if !a.Intersect(e).Empty() || !e.Intersect(a).Empty() {
		t.Error("intersect with empty should be empty")
	}
	if !a.Union(e).Equal(a) || !e.Union(a).Equal(a) {
		t.Error("union with empty should be identity")
	}
	if !a.Diff(e).Equal(a) || !e.Diff(a).Empty() {
		t.Error("diff with empty wrong")
	}
	if !e.Union(e).Empty() {
		t.Error("empty union empty should stay empty")
	}
}

func TestAddRemove(t *testing.T) {
	s := NewKeywordSet(1, 3)
	s2 := s.Add(2)
	if !s2.Equal(NewKeywordSet(1, 2, 3)) {
		t.Fatalf("Add = %v", s2)
	}
	if !s.Equal(NewKeywordSet(1, 3)) {
		t.Fatal("Add mutated receiver")
	}
	if got := s.Add(3); &got[0] != &s[0] {
		t.Error("Add of existing element should reuse the slice")
	}
	r := s2.Remove(2)
	if !r.Equal(s) {
		t.Fatalf("Remove = %v", r)
	}
	if got := s.Remove(99); &got[0] != &s[0] {
		t.Error("Remove of absent element should reuse the slice")
	}
	one := NewKeywordSet(7)
	if one.Remove(7) != nil {
		t.Error("removing last element should yield nil set")
	}
}

func TestJaccard(t *testing.T) {
	cases := []struct {
		a, b KeywordSet
		want float64
	}{
		{NewKeywordSet(1, 2), NewKeywordSet(1, 2), 1},
		{NewKeywordSet(1, 2), NewKeywordSet(3, 4), 0},
		{NewKeywordSet(1, 2, 3), NewKeywordSet(2, 3, 4), 0.5},
		{nil, nil, 0},
		{NewKeywordSet(1), nil, 0},
	}
	for _, tt := range cases {
		if got := tt.a.Jaccard(tt.b); got != tt.want {
			t.Errorf("Jaccard(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
		if got := tt.b.Jaccard(tt.a); got != tt.want {
			t.Errorf("Jaccard not symmetric for %v,%v", tt.a, tt.b)
		}
	}
}

func TestEditDistance(t *testing.T) {
	cases := []struct {
		a, b KeywordSet
		want int
	}{
		{NewKeywordSet(1, 2), NewKeywordSet(1, 2), 0},
		{NewKeywordSet(1, 2), NewKeywordSet(2, 3), 2},
		{NewKeywordSet(1, 2, 3), nil, 3},
		{nil, NewKeywordSet(9), 1},
		{NewKeywordSet(1, 2, 3), NewKeywordSet(1, 2, 3, 4, 5), 2},
	}
	for _, tt := range cases {
		if got := tt.a.EditDistance(tt.b); got != tt.want {
			t.Errorf("EditDistance(%v, %v) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestKeyDistinctness(t *testing.T) {
	sets := []KeywordSet{
		nil,
		NewKeywordSet(1),
		NewKeywordSet(11),
		NewKeywordSet(1, 1),
		NewKeywordSet(1, 2),
		NewKeywordSet(12),
	}
	seen := map[string]KeywordSet{}
	for _, s := range sets {
		k := s.Key()
		if prev, ok := seen[k]; ok && !prev.Equal(s) {
			t.Fatalf("key collision: %v and %v both map to %q", prev, s, k)
		}
		seen[k] = s
	}
}

func randomSet(rng *rand.Rand, maxID, maxLen int) KeywordSet {
	n := rng.Intn(maxLen + 1)
	ids := make([]Keyword, n)
	for i := range ids {
		ids[i] = Keyword(rng.Intn(maxID))
	}
	return NewKeywordSet(ids...)
}

// Property tests against a map-based oracle.
func TestSetOpsAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		a := randomSet(rng, 20, 12)
		b := randomSet(rng, 20, 12)
		inA := map[Keyword]bool{}
		for _, id := range a {
			inA[id] = true
		}
		inB := map[Keyword]bool{}
		for _, id := range b {
			inB[id] = true
		}
		wantInter, wantUnion, wantDiff := 0, 0, 0
		for id := Keyword(0); id < 20; id++ {
			switch {
			case inA[id] && inB[id]:
				wantInter++
				wantUnion++
			case inA[id] && !inB[id]:
				wantDiff++
				wantUnion++
			case inB[id]:
				wantUnion++
			}
		}
		if got := a.Intersect(b).Len(); got != wantInter {
			t.Fatalf("Intersect len = %d, want %d (a=%v b=%v)", got, wantInter, a, b)
		}
		if got := a.Union(b).Len(); got != wantUnion {
			t.Fatalf("Union len = %d, want %d", got, wantUnion)
		}
		if got := a.Diff(b).Len(); got != wantDiff {
			t.Fatalf("Diff len = %d, want %d", got, wantDiff)
		}
		if a.IntersectLen(b) != wantInter || a.UnionLen(b) != wantUnion {
			t.Fatal("len-only ops disagree with materialized ops")
		}
		if !a.Intersect(b).Canonical() || !a.Union(b).Canonical() || !a.Diff(b).Canonical() {
			t.Fatal("results must stay canonical")
		}
	}
}

func TestJaccardBounds(t *testing.T) {
	f := func(aRaw, bRaw []uint16) bool {
		toSet := func(raw []uint16) KeywordSet {
			ids := make([]Keyword, len(raw))
			for i, r := range raw {
				ids[i] = Keyword(r % 64)
			}
			return NewKeywordSet(ids...)
		}
		a, b := toSet(aRaw), toSet(bRaw)
		j := a.Jaccard(b)
		if j < 0 || j > 1 {
			return false
		}
		if a.Equal(b) && !a.Empty() && j != 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// EditDistance must be a metric on sets: identity, symmetry, triangle
// inequality.
func TestEditDistanceMetric(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		a := randomSet(rng, 16, 8)
		b := randomSet(rng, 16, 8)
		c := randomSet(rng, 16, 8)
		if a.EditDistance(a) != 0 {
			t.Fatal("d(a,a) != 0")
		}
		if a.EditDistance(b) != b.EditDistance(a) {
			t.Fatal("edit distance not symmetric")
		}
		if a.EditDistance(c) > a.EditDistance(b)+b.EditDistance(c) {
			t.Fatalf("triangle inequality violated: a=%v b=%v c=%v", a, b, c)
		}
		if (a.EditDistance(b) == 0) != a.Equal(b) {
			t.Fatal("identity of indiscernibles violated")
		}
	}
}

func TestDice(t *testing.T) {
	cases := []struct {
		a, b KeywordSet
		want float64
	}{
		{NewKeywordSet(1, 2), NewKeywordSet(1, 2), 1},
		{NewKeywordSet(1, 2), NewKeywordSet(3, 4), 0},
		{NewKeywordSet(1, 2, 3), NewKeywordSet(2, 3, 4), 2.0 / 3},
		{nil, nil, 0},
		{NewKeywordSet(1), nil, 0},
	}
	for _, tt := range cases {
		if got := tt.a.Dice(tt.b); got != tt.want {
			t.Errorf("Dice(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
		if got := tt.b.Dice(tt.a); got != tt.want {
			t.Errorf("Dice not symmetric for %v,%v", tt.a, tt.b)
		}
	}
}

// Dice and Jaccard are monotonically related: J = D/(2−D). Verify the
// identity on random sets.
func TestDiceJaccardIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 300; i++ {
		a := randomSet(rng, 20, 10)
		b := randomSet(rng, 20, 10)
		d := a.Dice(b)
		j := a.Jaccard(b)
		want := 0.0
		if 2-d != 0 {
			want = d / (2 - d)
		}
		if diff := j - want; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("identity violated for %v,%v: J=%v D=%v", a, b, j, d)
		}
	}
}
