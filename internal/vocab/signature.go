package vocab

import "math/bits"

// SigWords is the fixed width of a keyword Signature in 64-bit words.
// Four words (256 bits) keep a whole signature in half a cache line
// while leaving single-document signatures (3–12 keywords in the bench
// datasets) nearly collision-free.
const SigWords = 4

// SigBits is the number of bits in a Signature.
const SigBits = SigWords * 64

// Signature is a fixed-width hashed bitmap summary of a KeywordSet: one
// bit per keyword, positioned by a multiplicative hash of the keyword
// ID. Signatures support constant-time *upper bounds* on set
// intersection sizes — the data-skipping primitive the index arenas use
// to avoid exact merge-walks over sorted []Keyword slices.
//
// The soundness invariant every user relies on: for any sets s, t,
//
//	|s ∩ t| ≤ popcount(sig(s) ∧ sig(t)) + (|t| − popcount(sig(t)))
//
// because every keyword of s ∩ t sets its bit in both signatures, and
// the correction term accounts for t-internal hash collisions (each bit
// of sig(t) outside the intersection absorbs at least one element of
// t). In particular sig(s) ∧ sig(t) = 0 proves s ∩ t = ∅ exactly.
type Signature [SigWords]uint64

// sigPosBits is log2(SigBits): sigPos keeps the top sigPosBits of the
// hash, yielding positions in [0, SigBits).
const sigPosBits = 8

// Compile-time guard: SigBits must equal 1 << sigPosBits, or sigPos
// would address bits outside the signature (or strand the upper words
// permanently zero). Either array has negative length if the constants
// drift apart.
var (
	_ [SigBits - (1 << sigPosBits)]struct{}
	_ [(1 << sigPosBits) - SigBits]struct{}
)

// sigPos maps a keyword to its bit position via golden-ratio
// multiplicative hashing; the top bits of the product are well mixed
// even for the dense sequential IDs Intern assigns.
//
//yask:hotpath
func sigPos(kw Keyword) uint64 {
	return (uint64(kw) * 0x9E3779B97F4A7C15) >> (64 - sigPosBits)
}

// Add sets the bit for kw.
//
//yask:hotpath
func (g *Signature) Add(kw Keyword) {
	p := sigPos(kw)
	g[p>>6] |= 1 << (p & 63)
}

// Merge ORs o into g — the signature of a union of sets.
//
//yask:hotpath
func (g *Signature) Merge(o *Signature) {
	for i := range g {
		g[i] |= o[i]
	}
}

// OnesCount returns the number of set bits.
//
//yask:hotpath
func (g *Signature) OnesCount() int {
	return bits.OnesCount64(g[0]) + bits.OnesCount64(g[1]) +
		bits.OnesCount64(g[2]) + bits.OnesCount64(g[3])
}

// IntersectCount returns popcount(g ∧ o).
//
//yask:hotpath
func (g *Signature) IntersectCount(o *Signature) int {
	return bits.OnesCount64(g[0]&o[0]) + bits.OnesCount64(g[1]&o[1]) +
		bits.OnesCount64(g[2]&o[2]) + bits.OnesCount64(g[3]&o[3])
}

// Disjoint reports whether g ∧ o is empty, which *proves* the
// underlying keyword sets share no keyword (no false negatives: a
// shared keyword sets the same bit in both signatures).
//
//yask:hotpath
func (g *Signature) Disjoint(o *Signature) bool {
	return g[0]&o[0] == 0 && g[1]&o[1] == 0 && g[2]&o[2] == 0 && g[3]&o[3] == 0
}

// Signature returns the hashed bitmap summary of s.
//
//yask:hotpath
func (s KeywordSet) Signature() Signature {
	var g Signature
	for _, kw := range s {
		g.Add(kw)
	}
	return g
}

// QuerySig is one query keyword set prepared for signature probing: the
// signature itself plus the collision slack that keeps the intersection
// bound sound when two query keywords hash to the same bit. Queries are
// tiny, so a QuerySig is computed once per traversal (pure stack value,
// no allocation) and probed once per node or entry.
type QuerySig struct {
	// Sig is the signature of the query keyword set.
	Sig Signature
	// Len is the cardinality of the query keyword set.
	Len int
	// Excess is Len − popcount(Sig): the number of query keywords lost
	// to hash collisions, added back by IntersectBound so the bound
	// stays sound (almost always 0 for realistic query sizes).
	Excess int
}

// NewQuerySig prepares doc for signature probing.
//
//yask:hotpath
func NewQuerySig(doc KeywordSet) QuerySig {
	sig := doc.Signature()
	return QuerySig{Sig: sig, Len: len(doc), Excess: len(doc) - sig.OnesCount()}
}

// Disjoint reports whether s ∧ q's signature is empty, proving the
// summarized set shares no keyword with the query.
//
//yask:hotpath
func (q *QuerySig) Disjoint(s *Signature) bool { return q.Sig.Disjoint(s) }

// IntersectBound returns an upper bound on |t ∩ q.doc| for any keyword
// set t summarized by s (t itself, or any subset of the set s
// summarizes — signatures are monotone under union, so the bound also
// covers every object under a node whose sig covers the node's keyword
// union). See the Signature soundness invariant; the bound is
// additionally capped at the query cardinality.
//
//yask:hotpath
func (q *QuerySig) IntersectBound(s *Signature) int {
	m := q.Sig.IntersectCount(s) + q.Excess
	if m > q.Len {
		m = q.Len
	}
	return m
}
