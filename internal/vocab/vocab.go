// Package vocab provides the textual substrate of YASK: a vocabulary that
// interns keyword strings to dense integer IDs, and KeywordSet, a sorted
// set of keyword IDs with the set algebra the ranking function (Jaccard,
// Eqn 2 of the paper) and the keyword-adaption model (keyword edit
// distance, Eqn 4) are built on.
//
// Interning keywords once and operating on sorted []Keyword everywhere
// keeps set intersection/union linear, allocation-light, and cheap to
// store inside index nodes.
package vocab

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"unicode"
)

// Keyword is a dense vocabulary ID. IDs are assigned in first-seen order
// starting at 0.
type Keyword uint32

// Vocabulary interns keyword strings to Keyword IDs. It is safe for
// concurrent use. The zero value is ready to use.
type Vocabulary struct {
	mu    sync.RWMutex
	ids   map[string]Keyword
	words []string
}

// NewVocabulary returns an empty vocabulary.
func NewVocabulary() *Vocabulary {
	return &Vocabulary{ids: make(map[string]Keyword)}
}

// Intern returns the ID for word, assigning a fresh one if the word is
// new. Words are case-folded to lower case before interning.
func (v *Vocabulary) Intern(word string) Keyword {
	word = Normalize(word)
	v.mu.RLock()
	id, ok := v.ids[word]
	v.mu.RUnlock()
	if ok {
		return id
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if id, ok := v.ids[word]; ok {
		return id
	}
	if v.ids == nil {
		v.ids = make(map[string]Keyword)
	}
	id = Keyword(len(v.words))
	v.ids[word] = id
	v.words = append(v.words, word)
	return id
}

// Lookup returns the ID for word if it has been interned.
func (v *Vocabulary) Lookup(word string) (Keyword, bool) {
	word = Normalize(word)
	v.mu.RLock()
	defer v.mu.RUnlock()
	id, ok := v.ids[word]
	return id, ok
}

// Word returns the string for id. It panics if id was never assigned,
// because that always indicates corrupted caller state.
func (v *Vocabulary) Word(id Keyword) string {
	v.mu.RLock()
	defer v.mu.RUnlock()
	if int(id) >= len(v.words) {
		panic(fmt.Sprintf("vocab: unknown keyword id %d (vocabulary size %d)", id, len(v.words)))
	}
	return v.words[id]
}

// Len returns the number of distinct interned keywords.
func (v *Vocabulary) Len() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.words)
}

// All returns every interned word in keyword-ID order: index i is the
// word of Keyword(i). The arena persistence layer embeds this list in
// each file so a later process can pin the same IDs to the same words
// (EnsurePrefix) before mapping keyword columns.
func (v *Vocabulary) All() []string {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]string, len(v.words))
	copy(out, v.words)
	return out
}

// EnsurePrefix interns words in order and reports whether they ended up
// occupying keyword IDs 0..len(words)-1 — i.e. whether this vocabulary
// now assigns exactly the IDs the list was saved under. It is how boot
// validates that an arena file's embedded vocabulary is compatible with
// the engine's: true on an empty (or identically-seeded) vocabulary,
// false whenever prior interning already claimed a conflicting ID, in
// which case the caller must not trust any persisted keyword column.
func (v *Vocabulary) EnsurePrefix(words []string) bool {
	ok := true
	for i, w := range words {
		if v.Intern(w) != Keyword(i) {
			ok = false
		}
	}
	return ok
}

// InternSet interns every word and returns them as a KeywordSet.
func (v *Vocabulary) InternSet(words ...string) KeywordSet {
	ids := make([]Keyword, 0, len(words))
	for _, w := range words {
		if Normalize(w) == "" {
			continue
		}
		ids = append(ids, v.Intern(w))
	}
	return NewKeywordSet(ids...)
}

// InternText tokenizes free text (letters/digits runs, lower-cased) and
// interns every token, returning the resulting set.
func (v *Vocabulary) InternText(text string) KeywordSet {
	return v.InternSet(Tokenize(text)...)
}

// Words materializes set back into sorted keyword strings.
func (v *Vocabulary) Words(set KeywordSet) []string {
	out := make([]string, len(set))
	for i, id := range set {
		out[i] = v.Word(id)
	}
	sort.Strings(out)
	return out
}

// Normalize lower-cases and trims a keyword.
func Normalize(word string) string {
	return strings.ToLower(strings.TrimSpace(word))
}

// Tokenize splits free text into lower-cased tokens of letters and
// digits. Everything else separates tokens.
func Tokenize(text string) []string {
	return strings.FieldsFunc(strings.ToLower(text), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
}

// KeywordSet is a strictly increasing slice of keyword IDs. The canonical
// (sorted, deduplicated) form is required by every operation; construct
// values with NewKeywordSet or the Vocabulary helpers to guarantee it.
// A nil KeywordSet is the empty set.
type KeywordSet []Keyword

// NewKeywordSet returns the canonical set of the given IDs.
func NewKeywordSet(ids ...Keyword) KeywordSet {
	if len(ids) == 0 {
		return nil
	}
	s := make(KeywordSet, len(ids))
	copy(s, ids)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	// Deduplicate in place.
	w := 1
	for i := 1; i < len(s); i++ {
		if s[i] != s[i-1] {
			s[w] = s[i]
			w++
		}
	}
	return s[:w]
}

// Canonical reports whether s is sorted strictly ascending.
func (s KeywordSet) Canonical() bool {
	for i := 1; i < len(s); i++ {
		if s[i] <= s[i-1] {
			return false
		}
	}
	return true
}

// Len returns the cardinality of s.
//
//yask:hotpath
func (s KeywordSet) Len() int { return len(s) }

// Empty reports whether s has no elements.
//
//yask:hotpath
func (s KeywordSet) Empty() bool { return len(s) == 0 }

// Contains reports whether id is in s. The binary search is hand-rolled
// rather than delegated to sort.Search: Contains sits on the index
// bound hot paths (one probe per query keyword per node), and the
// closure call sort.Search makes per comparison costs more than the
// comparison itself.
//
//yask:hotpath
func (s KeywordSet) Contains(id Keyword) bool {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s) && s[lo] == id
}

// Clone returns an independent copy of s.
func (s KeywordSet) Clone() KeywordSet {
	if s == nil {
		return nil
	}
	out := make(KeywordSet, len(s))
	copy(out, s)
	return out
}

// Equal reports whether s and t contain exactly the same keywords.
func (s KeywordSet) Equal(t KeywordSet) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// IntersectLen returns |s ∩ t| without allocating.
//
//yask:hotpath
func (s KeywordSet) IntersectLen(t KeywordSet) int {
	n, i, j := 0, 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] == t[j]:
			n++
			i++
			j++
		case s[i] < t[j]:
			i++
		default:
			j++
		}
	}
	return n
}

// UnionLen returns |s ∪ t| without allocating.
//
//yask:hotpath
func (s KeywordSet) UnionLen(t KeywordSet) int {
	return len(s) + len(t) - s.IntersectLen(t)
}

// Intersect returns s ∩ t.
func (s KeywordSet) Intersect(t KeywordSet) KeywordSet {
	var out KeywordSet
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] == t[j]:
			out = append(out, s[i])
			i++
			j++
		case s[i] < t[j]:
			i++
		default:
			j++
		}
	}
	return out
}

// Union returns s ∪ t.
func (s KeywordSet) Union(t KeywordSet) KeywordSet {
	out := make(KeywordSet, 0, len(s)+len(t))
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] == t[j]:
			out = append(out, s[i])
			i++
			j++
		case s[i] < t[j]:
			out = append(out, s[i])
			i++
		default:
			out = append(out, t[j])
			j++
		}
	}
	out = append(out, s[i:]...)
	out = append(out, t[j:]...)
	if len(out) == 0 {
		return nil
	}
	return out
}

// Diff returns s \ t.
func (s KeywordSet) Diff(t KeywordSet) KeywordSet {
	var out KeywordSet
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] == t[j]:
			i++
			j++
		case s[i] < t[j]:
			out = append(out, s[i])
			i++
		default:
			j++
		}
	}
	out = append(out, s[i:]...)
	if len(out) == 0 {
		return nil
	}
	return out
}

// Add returns s ∪ {id}, reusing s when id is already present.
func (s KeywordSet) Add(id Keyword) KeywordSet {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= id })
	if i < len(s) && s[i] == id {
		return s
	}
	out := make(KeywordSet, 0, len(s)+1)
	out = append(out, s[:i]...)
	out = append(out, id)
	out = append(out, s[i:]...)
	return out
}

// Remove returns s \ {id}, reusing s when id is absent.
func (s KeywordSet) Remove(id Keyword) KeywordSet {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= id })
	if i >= len(s) || s[i] != id {
		return s
	}
	out := make(KeywordSet, 0, len(s)-1)
	out = append(out, s[:i]...)
	out = append(out, s[i+1:]...)
	if len(out) == 0 {
		return nil
	}
	return out
}

// Jaccard returns |s ∩ t| / |s ∪ t|, the textual similarity of Eqn 2.
// The Jaccard similarity of two empty sets is defined as 0 here: an
// object with no keywords has no textual evidence for any query.
//
//yask:hotpath
func (s KeywordSet) Jaccard(t KeywordSet) float64 {
	inter := s.IntersectLen(t)
	union := len(s) + len(t) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Dice returns the Dice–Sørensen coefficient 2|s ∩ t| / (|s| + |t|),
// the alternative textual similarity model of the paper's footnote 1.
// The Dice similarity of two empty sets is defined as 0, matching
// Jaccard.
//
//yask:hotpath
func (s KeywordSet) Dice(t KeywordSet) float64 {
	den := len(s) + len(t)
	if den == 0 {
		return 0
	}
	return 2 * float64(s.IntersectLen(t)) / float64(den)
}

// EditDistance returns the minimum number of single-keyword insert or
// delete operations transforming s into t. Because both are sets this is
// exactly |s \ t| + |t \ s| (the symmetric difference), the Δdoc measure
// of Eqn 4.
//
//yask:hotpath
func (s KeywordSet) EditDistance(t KeywordSet) int {
	inter := s.IntersectLen(t)
	return (len(s) - inter) + (len(t) - inter)
}

// Key returns a compact string form usable as a map key. Distinct sets
// map to distinct keys.
func (s KeywordSet) Key() string {
	if len(s) == 0 {
		return ""
	}
	var b strings.Builder
	for i, id := range s {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", id)
	}
	return b.String()
}

// String implements fmt.Stringer using raw IDs; use Vocabulary.Words for
// human-readable output.
func (s KeywordSet) String() string {
	return "{" + s.Key() + "}"
}
