package vocab

import (
	"math/rand"
	"testing"
)

// TestSignatureSoundness is the load-bearing property of the whole
// signature pruning layer: the signature intersection bound is never
// below the true intersection size, and a disjoint signature AND always
// means a truly empty intersection. Violating either would let the
// index arenas prune objects that belong in the answer.
func TestSignatureSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20000; trial++ {
		// Sweep vocabulary sizes around and far past SigBits so hash
		// collisions actually occur.
		vocabSize := []int{10, 100, 257, 5000}[trial%4]
		s := randomSet(rng, vocabSize, 40)
		q := randomSet(rng, vocabSize, 8)
		ssig := s.Signature()
		qs := NewQuerySig(q)
		truth := s.IntersectLen(q)
		if bound := qs.IntersectBound(&ssig); bound < truth {
			t.Fatalf("trial %d: signature bound %d < true |s∩q| %d (s=%v q=%v)",
				trial, bound, truth, s, q)
		}
		if qs.Disjoint(&ssig) && truth != 0 {
			t.Fatalf("trial %d: Disjoint reported but |s∩q| = %d (s=%v q=%v)",
				trial, truth, s, q)
		}
	}
}

// TestSignatureSubsetMonotone checks the property node signatures rely
// on: a signature built from a superset bounds the intersection of any
// subset with the query (the node's union signature covers every object
// below).
func TestSignatureSubsetMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 5000; trial++ {
		super := randomSet(rng, 600, 60)
		// Draw a subset.
		var sub KeywordSet
		for _, kw := range super {
			if rng.Intn(2) == 0 {
				sub = append(sub, kw)
			}
		}
		q := randomSet(rng, 600, 6)
		superSig := super.Signature()
		qs := NewQuerySig(q)
		if truth := sub.IntersectLen(q); qs.IntersectBound(&superSig) < truth {
			t.Fatalf("trial %d: superset signature bound %d < subset intersection %d",
				trial, qs.IntersectBound(&superSig), truth)
		}
	}
}

func TestQuerySigExcess(t *testing.T) {
	// Force a query-internal collision: two keywords hashing to the same
	// bit must be absorbed by Excess, not undercount the bound.
	base := Keyword(3)
	var collider Keyword
	found := false
	for kw := Keyword(4); kw < 1_000_000; kw++ {
		if sigPos(kw) == sigPos(base) {
			collider = kw
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no colliding keyword found (hash changed?)")
	}
	q := NewKeywordSet(base, collider)
	qs := NewQuerySig(q)
	if qs.Excess != 1 {
		t.Fatalf("excess = %d, want 1 for a two-keyword one-bit query", qs.Excess)
	}
	s := q.Clone()
	ssig := s.Signature()
	if bound := qs.IntersectBound(&ssig); bound < 2 {
		t.Fatalf("collision query: bound %d < true intersection 2", bound)
	}
}

func TestSignatureMerge(t *testing.T) {
	a := NewKeywordSet(1, 2, 3).Signature()
	b := NewKeywordSet(3, 4, 5).Signature()
	merged := a
	merged.Merge(&b)
	want := NewKeywordSet(1, 2, 3, 4, 5).Signature()
	if merged != want {
		t.Fatalf("merge mismatch: %v != %v", merged, want)
	}
}

func TestSignatureOnesAndIntersectCount(t *testing.T) {
	empty := KeywordSet(nil).Signature()
	if empty.OnesCount() != 0 {
		t.Fatalf("empty signature has %d bits", empty.OnesCount())
	}
	a := NewKeywordSet(10, 20).Signature()
	if got := a.IntersectCount(&a); got != a.OnesCount() {
		t.Fatalf("self intersect count %d != ones count %d", got, a.OnesCount())
	}
	if !a.Disjoint(&empty) {
		t.Fatal("any signature must be disjoint from the empty one")
	}
}

func BenchmarkKeywordSetContains(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	set := randomSet(rng, 1_000_000, 0)
	for len(set) < 512 {
		set = set.Add(Keyword(rng.Intn(1_000_000)))
	}
	probes := make([]Keyword, 256)
	for i := range probes {
		if i%2 == 0 {
			probes[i] = set[rng.Intn(len(set))] // present
		} else {
			probes[i] = Keyword(rng.Intn(1_000_000)) // mostly absent
		}
	}
	b.ResetTimer()
	hits := 0
	for i := 0; i < b.N; i++ {
		if set.Contains(probes[i%len(probes)]) {
			hits++
		}
	}
	if hits < 0 {
		b.Fatal("unreachable; keeps hits live")
	}
}
