package admission

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestUnlimited: a disabled controller admits everything and still
// counts inflight.
func TestUnlimited(t *testing.T) {
	c := New(Config{})
	var releases []func()
	for i := 0; i < 100; i++ {
		rel, err := c.Acquire(context.Background())
		if err != nil {
			t.Fatalf("Acquire %d: %v", i, err)
		}
		releases = append(releases, rel)
	}
	if got := c.Stats().Inflight; got != 100 {
		t.Fatalf("inflight = %d, want 100", got)
	}
	for _, rel := range releases {
		rel()
	}
	st := c.Stats()
	if st.Inflight != 0 || st.Admitted != 100 || st.Shed != 0 {
		t.Fatalf("after release: %+v", st)
	}
}

// TestShedAtCap: with no queue, the (cap+1)-th concurrent request is
// shed with ErrShed.
func TestShedAtCap(t *testing.T) {
	c := New(Config{MaxInflight: 2})
	r1, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Acquire(context.Background()); !errors.Is(err, ErrShed) {
		t.Fatalf("over-cap Acquire: err = %v, want ErrShed", err)
	}
	r1()
	r3, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatalf("Acquire after release: %v", err)
	}
	r2()
	r3()
	st := c.Stats()
	if st.Inflight != 0 || st.Admitted != 3 || st.Shed != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestQueueFIFO: queued waiters are granted strictly in arrival order.
func TestQueueFIFO(t *testing.T) {
	c := New(Config{MaxInflight: 1, QueueDepth: 8, QueueWait: 5 * time.Second})
	hold, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	const waiters = 8
	order := make(chan int, waiters)
	var started, wg sync.WaitGroup
	started.Add(waiters)
	wg.Add(waiters)
	for i := 0; i < waiters; i++ {
		i := i
		go func() {
			defer wg.Done()
			// Serialize queue entry so arrival order is deterministic:
			// waiter i only starts after waiter i-1 is in the queue.
			for {
				c.mu.Lock()
				n := len(c.queue)
				c.mu.Unlock()
				if n == i {
					break
				}
				time.Sleep(time.Millisecond)
			}
			started.Done()
			rel, err := c.Acquire(context.Background())
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			order <- i
			rel()
		}()
	}
	started.Wait()
	hold()
	wg.Wait()
	close(order)
	want := 0
	for got := range order {
		if got != want {
			t.Fatalf("grant order: got waiter %d, want %d", got, want)
		}
		want++
	}
}

// TestQueueDepthBound: the (depth+1)-th waiter is shed immediately.
func TestQueueDepthBound(t *testing.T) {
	c := New(Config{MaxInflight: 1, QueueDepth: 1, QueueWait: time.Minute})
	hold, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer hold()

	queued := make(chan error, 1)
	go func() {
		rel, err := c.Acquire(context.Background())
		if err == nil {
			rel()
		}
		queued <- err
	}()
	// Wait until the first waiter is actually queued.
	for {
		if c.Stats().Queued == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := c.Acquire(context.Background()); !errors.Is(err, ErrShed) {
		t.Fatalf("over-depth Acquire: err = %v, want ErrShed", err)
	}
	hold()
	if err := <-queued; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
}

// TestQueueWaitBudget: a waiter whose wait budget expires is shed, and
// the slot it never got remains usable.
func TestQueueWaitBudget(t *testing.T) {
	c := New(Config{MaxInflight: 1, QueueDepth: 4, QueueWait: 10 * time.Millisecond})
	hold, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Acquire(context.Background()); !errors.Is(err, ErrShed) {
		t.Fatalf("timed-out Acquire: err = %v, want ErrShed", err)
	}
	hold()
	rel, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatalf("Acquire after timeout shed: %v", err)
	}
	rel()
	if st := c.Stats(); st.Inflight != 0 || st.Queued != 0 {
		t.Fatalf("leaked state: %+v", st)
	}
}

// TestQueueCtxCancel: a queued waiter whose own context is canceled
// gets ctx.Err(), not ErrShed.
func TestQueueCtxCancel(t *testing.T) {
	c := New(Config{MaxInflight: 1, QueueDepth: 4, QueueWait: time.Minute})
	hold, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer hold()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Acquire(ctx)
		done <- err
	}()
	for {
		if c.Stats().Queued == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter: err = %v, want context.Canceled", err)
	}
}

// TestRecordOutcome: terminal errors classify via errors.Is, including
// wrapped ones.
func TestRecordOutcome(t *testing.T) {
	c := New(Config{})
	c.RecordOutcome(nil)
	c.RecordOutcome(context.DeadlineExceeded)
	c.RecordOutcome(errors.Join(errors.New("query"), context.DeadlineExceeded))
	c.RecordOutcome(context.Canceled)
	c.RecordOutcome(errors.New("unrelated"))
	st := c.Stats()
	if st.DeadlineExceeded != 2 || st.Canceled != 1 {
		t.Fatalf("outcomes: %+v", st)
	}
}

// TestStormInvariants floods the controller from many goroutines and
// checks the global invariants under -race: inflight never exceeds the
// cap, every admitted request releases, and every request is either
// admitted or shed exactly once.
func TestStormInvariants(t *testing.T) {
	const (
		cap      = 4
		depth    = 8
		clients  = 64
		requests = 50
	)
	c := New(Config{MaxInflight: cap, QueueDepth: depth, QueueWait: 2 * time.Millisecond})
	var admitted, shed, concurrent, peak atomic.Int64
	var wg sync.WaitGroup
	wg.Add(clients)
	for g := 0; g < clients; g++ {
		go func() {
			defer wg.Done()
			for r := 0; r < requests; r++ {
				rel, err := c.Acquire(context.Background())
				if err != nil {
					if !errors.Is(err, ErrShed) {
						t.Errorf("unexpected error: %v", err)
					}
					shed.Add(1)
					continue
				}
				admitted.Add(1)
				cur := concurrent.Add(1)
				for {
					p := peak.Load()
					if cur <= p || peak.CompareAndSwap(p, cur) {
						break
					}
				}
				time.Sleep(50 * time.Microsecond)
				concurrent.Add(-1)
				rel()
			}
		}()
	}
	wg.Wait()
	if got := peak.Load(); got > cap {
		t.Fatalf("peak concurrency %d exceeds cap %d", got, cap)
	}
	if total := admitted.Load() + shed.Load(); total != clients*requests {
		t.Fatalf("admitted %d + shed %d = %d, want %d",
			admitted.Load(), shed.Load(), total, clients*requests)
	}
	st := c.Stats()
	if st.Inflight != 0 || st.Queued != 0 {
		t.Fatalf("leaked state after storm: %+v", st)
	}
	if st.Admitted != admitted.Load() || st.Shed != shed.Load() {
		t.Fatalf("counter mismatch: stats %+v vs observed admitted %d shed %d",
			st, admitted.Load(), shed.Load())
	}
}
