// Package admission is the serving layer's load-shedding front door: a
// bounded-inflight controller with a bounded FIFO wait queue.
//
// The engine's query latency is roughly proportional to the number of
// concurrently executing requests once they exceed the core count, so
// accepting unbounded work degrades everyone — the melt-down mode of a
// service under overload. The controller instead caps the number of
// requests executing at once; excess arrivals wait in a bounded FIFO
// queue for a bounded time, and everything past that is shed
// immediately with ErrShed so the HTTP layer can answer 429 and the
// client can retry against a healthy server.
//
// The queue is explicitly FIFO — a buffered-channel semaphore would
// wake waiters in runtime order, letting an unlucky request starve
// behind later arrivals — because bounded waiting only helps if the
// wait is predictable.
package admission

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// ErrShed reports a request rejected by admission control: the
// inflight cap and the wait queue were both full, or the queue wait
// budget expired before a slot opened. Callers distinguish it with
// errors.Is, never by matching error text.
var ErrShed = errors.New("admission: request shed by overload control")

// Config sizes a Controller.
type Config struct {
	// MaxInflight caps concurrently admitted requests. Zero or negative
	// disables admission control entirely: Acquire always succeeds
	// immediately (counters still track inflight).
	MaxInflight int
	// QueueDepth bounds how many requests may wait for a slot when the
	// cap is reached. Zero means no queue: the cap full ⇒ shed.
	QueueDepth int
	// QueueWait bounds how long a queued request may wait before it is
	// shed. Zero means wait only as long as the request's own context
	// allows.
	QueueWait time.Duration
}

// Stats is a point-in-time snapshot of the controller's counters,
// exported through GET /api/stats so operators can see shedding happen.
type Stats struct {
	// Inflight and Queued are current gauges; the rest are monotonic
	// counters since process start.
	Inflight int64 `json:"inflight"`
	Queued   int64 `json:"queued"`
	// Admitted counts requests that got a slot (immediately or after
	// queuing); Shed counts rejections by cap, queue bound, or wait
	// budget.
	Admitted int64 `json:"admitted"`
	Shed     int64 `json:"shed"`
	// DeadlineExceeded and Canceled count admitted requests whose
	// handler returned context.DeadlineExceeded / context.Canceled —
	// work accepted and then cut short by its own deadline or an
	// abandoning client.
	DeadlineExceeded int64 `json:"deadlineExceeded"`
	Canceled         int64 `json:"canceled"`
}

// Controller implements the admission policy. The zero value is not
// ready; use New.
type Controller struct {
	cfg Config

	mu       sync.Mutex
	inflight int
	// queue holds one grant channel per waiter, FIFO. A releasing
	// request hands its slot to the head by closing the head's channel;
	// a waiter that times out removes itself, and if its channel is
	// already gone it was granted concurrently and must re-release.
	queue []chan struct{}

	admitted         atomic.Int64
	shed             atomic.Int64
	deadlineExceeded atomic.Int64
	canceled         atomic.Int64
}

// New builds a controller for cfg. Always construct one — a disabled
// controller (MaxInflight ≤ 0) still tracks counters, so stats output
// never has a missing section.
func New(cfg Config) *Controller {
	return &Controller{cfg: cfg}
}

// Acquire admits the request or sheds it. On success it returns a
// release function the caller must invoke exactly once when the
// request finishes (a deferred call survives handler panics). On
// rejection it returns ErrShed (cap and queue full, or wait budget
// spent) or ctx.Err() (the caller gave up while queued).
func (c *Controller) Acquire(ctx context.Context) (release func(), err error) {
	if c.cfg.MaxInflight <= 0 {
		c.mu.Lock()
		c.inflight++
		c.mu.Unlock()
		c.admitted.Add(1)
		return c.release, nil
	}

	c.mu.Lock()
	if c.inflight < c.cfg.MaxInflight {
		c.inflight++
		c.mu.Unlock()
		c.admitted.Add(1)
		return c.release, nil
	}
	if len(c.queue) >= c.cfg.QueueDepth {
		c.mu.Unlock()
		c.shed.Add(1)
		return nil, ErrShed
	}
	grant := make(chan struct{})
	c.queue = append(c.queue, grant)
	c.mu.Unlock()

	var timeout <-chan time.Time
	if c.cfg.QueueWait > 0 {
		t := time.NewTimer(c.cfg.QueueWait)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case <-grant:
		// The releasing request already transferred its slot to us:
		// inflight was left unchanged on purpose.
		c.admitted.Add(1)
		return c.release, nil
	case <-timeout:
		c.abandon(grant)
		c.shed.Add(1)
		return nil, ErrShed
	case <-ctx.Done():
		c.abandon(grant)
		c.shed.Add(1)
		return nil, ctx.Err()
	}
}

// abandon removes a waiter's grant channel from the queue. If the
// channel is no longer queued, a releaser granted it in the race
// window between the select and the lock — the waiter now owns a slot
// it will never use, so pass it on.
func (c *Controller) abandon(grant chan struct{}) {
	c.mu.Lock()
	for i, g := range c.queue {
		if g == grant {
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			c.mu.Unlock()
			return
		}
	}
	c.mu.Unlock()
	c.release()
}

// release returns a slot: to the queue head if anyone is waiting (the
// slot transfers, inflight stays constant), back to the pool
// otherwise.
func (c *Controller) release() {
	c.mu.Lock()
	if len(c.queue) > 0 {
		head := c.queue[0]
		c.queue = c.queue[1:]
		c.mu.Unlock()
		close(head)
		return
	}
	c.inflight--
	c.mu.Unlock()
}

// RecordOutcome classifies an admitted request's terminal error into
// the deadline/cancellation counters. Matching uses errors.Is so
// wrapped context errors count too; nil and other errors are ignored.
func (c *Controller) RecordOutcome(err error) {
	switch {
	case err == nil:
	case errors.Is(err, context.DeadlineExceeded):
		c.deadlineExceeded.Add(1)
	case errors.Is(err, context.Canceled):
		c.canceled.Add(1)
	}
}

// Stats snapshots the counters.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	inflight, queued := c.inflight, len(c.queue)
	c.mu.Unlock()
	return Stats{
		Inflight:         int64(inflight),
		Queued:           int64(queued),
		Admitted:         c.admitted.Load(),
		Shed:             c.shed.Load(),
		DeadlineExceeded: c.deadlineExceeded.Load(),
		Canceled:         c.canceled.Load(),
	}
}
