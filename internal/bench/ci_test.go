package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func baselineFixture() Report {
	return Report{
		Schema: "yask-bench/v1", Scale: "quick", N: 10000, GoMaxProcs: 1,
		Metrics: []Metric{
			{Name: "e1/topk/setr/k=3", Value: 350000, Unit: "ns/op"},
			{Name: "e1/allocs/setr/k=3", Value: 0, Unit: "allocs/op"},
			{Name: "e1/allocs/ir/k=3", Value: 0, Unit: "allocs/op"},
			{Name: "e9/batch/loop", Value: 2500, Unit: "queries/s"},
		},
	}
}

// TestCompareBaselineHolds: a report whose zero-allocs rows stay zero
// passes the gate, however much the timing rows moved.
func TestCompareBaselineHolds(t *testing.T) {
	cur := baselineFixture()
	cur.Metrics[0].Value = 900000 // latency tripled: context, not a failure
	summary, regressions := CompareBaseline(cur, baselineFixture())
	if len(regressions) != 0 {
		t.Fatalf("unexpected regressions: %v", regressions)
	}
	if len(summary) == 0 || !strings.Contains(summary[0], "e1/topk/setr/k=3") {
		t.Fatalf("timing delta missing from summary: %v", summary)
	}
}

// TestCompareBaselineCatchesAllocRegression is the deliberate-regression
// demonstration of the bench-smoke gate: a hot path that starts
// allocating — or a guaranteed row that disappears — hard-fails.
func TestCompareBaselineCatchesAllocRegression(t *testing.T) {
	leaky := baselineFixture()
	leaky.Metrics[1].Value = 3 // e1/allocs/setr/k=3: 0 -> 3
	_, regressions := CompareBaseline(leaky, baselineFixture())
	if len(regressions) != 1 || !strings.Contains(regressions[0], "e1/allocs/setr/k=3") {
		t.Fatalf("allocation regression not caught: %v", regressions)
	}

	renamed := baselineFixture()
	renamed.Metrics = renamed.Metrics[:1] // both allocs rows gone
	_, regressions = CompareBaseline(renamed, baselineFixture())
	if len(regressions) != 2 {
		t.Fatalf("missing guaranteed rows not caught: %v", regressions)
	}
}

// TestLoadReport round-trips the checked-in baseline format and rejects
// wrong schemas.
func TestLoadReport(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	if err := os.WriteFile(good, []byte(`{"schema":"yask-bench/v1","scale":"quick","n":1,"gomaxprocs":1,"metrics":[{"name":"a","value":1,"unit":"x"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := LoadReport(good)
	if err != nil || len(rep.Metrics) != 1 {
		t.Fatalf("LoadReport = %+v, %v", rep, err)
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"other/v9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadReport(bad); err == nil {
		t.Fatal("wrong schema accepted")
	}
	if _, err := LoadReport(filepath.Join(dir, "absent.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}
