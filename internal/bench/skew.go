package bench

import (
	"fmt"
	"io"
	"time"

	"github.com/yask-engine/yask/internal/core"
	"github.com/yask-engine/yask/internal/dataset"
	"github.com/yask-engine/yask/internal/object"
	"github.com/yask-engine/yask/internal/score"
	"github.com/yask-engine/yask/internal/shard"
)

// skewShards is the shard count E11 measures at — large enough that a
// uniform grid over a clustered dataset leaves cells nearly empty.
const skewShards = 8

// skewedDataset generates the deliberately skewed workload of E11: a
// handful of very tight Gaussian clusters, the regime real geo-text
// corpora (POI datasets, city crawls) live in, where a uniform grid
// concentrates most objects in a few cells.
func skewedDataset(n int) *dataset.Dataset {
	cfg := dataset.DefaultConfig(n, seed+5)
	cfg.Clusters = 3
	cfg.ClusterStd = 0.01
	ds, err := dataset.Generate(cfg)
	if err != nil {
		panic(err)
	}
	return ds
}

// cloneObjects copies a collection so each strategy's engine owns its
// mutations.
func cloneObjects(c *object.Collection) *object.Collection {
	objs := make([]object.Object, c.Len())
	copy(objs, c.All())
	return object.NewCollection(objs)
}

// skewRow is one measured strategy of E11.
type skewRow struct {
	name       string
	minLive    int
	maxLive    int
	imbalance  float64
	rebalances int64
	topk       time.Duration
}

// measureSkewRow reads the engine's shard balance and measures warm
// top-k latency over qs.
func measureSkewRow(name string, eng *core.Engine, qs []score.Query) skewRow {
	st := eng.Stats()
	row := skewRow{name: name, imbalance: st.ImbalanceFactor, rebalances: st.Rebalances}
	row.minLive = st.PerShard[0].Live
	for _, sh := range st.PerShard {
		if sh.Live < row.minLive {
			row.minLive = sh.Live
		}
		if sh.Live > row.maxLive {
			row.maxLive = sh.Live
		}
	}
	for _, q := range qs[:4] { // warm the scratch pools
		if _, err := eng.TopK(q); err != nil {
			panic(err)
		}
	}
	row.topk = timeIt(func() {
		for _, q := range qs {
			if _, err := eng.TopK(q); err != nil {
				panic(err)
			}
		}
	}) / time.Duration(len(qs))
	return row
}

// measureSkew builds the E11 strategies over one skewed dataset: the
// fixed grid, the STR splitter, the STR engine after a hotspot insert
// storm (populations drift), and the same engine after a rebalance
// restores balance. The storm buffers refreshes (RefreshEvery) so the
// measurement isolates partitioning, not refresh amortization.
func measureSkew(scale Scale) []skewRow {
	ds := skewedDataset(scale.baseN())
	qs := dataset.Workload(ds, dataset.WorkloadConfig{
		Queries: scale.queries(), Seed: seed + 6, K: 10, Keywords: 2,
		W: score.DefaultWeights, FromObjectDocs: true,
	})

	grid := core.NewEngine(cloneObjects(ds.Objects), core.Options{
		Shards: skewShards, Splitter: shard.GridSplitter{}, DisableCache: true,
	})
	str := core.NewEngine(cloneObjects(ds.Objects), core.Options{
		Shards: skewShards, Splitter: shard.STRSplitter{}, RefreshEvery: 1 << 20, DisableCache: true,
	})
	rows := []skewRow{
		measureSkewRow("grid", grid, qs),
		measureSkewRow("str", str, qs),
	}

	// Hotspot drift: a bulk load concentrated at one cluster center
	// skews even the STR layout; the rebalance re-splits and restores
	// balance. Queries stay byte-identical throughout (the equivalence
	// property suite enforces it); E11 measures the balance trajectory.
	hot := ds.Objects.Get(0)
	n := scale.baseN() / 5
	for i := 0; i < n; i++ {
		o := dsObjectNear(ds, hot, i)
		if _, err := str.Insert(o); err != nil {
			panic(err)
		}
	}
	str.Refresh()
	rows = append(rows, measureSkewRow("str+hotspot", str, qs))
	str.Rebalance()
	rows = append(rows, measureSkewRow("rebalanced", str, qs))
	return rows
}

// dsObjectNear derives a deterministic hotspot object jittered around a
// source object — tight enough to land in one shard of the original
// layout, spread enough that a re-split can divide it.
func dsObjectNear(ds *dataset.Dataset, src object.Object, i int) object.Object {
	jitter := float64(i%97) * 1e-4
	loc := src.Loc
	loc.X += jitter
	loc.Y += jitter
	return object.Object{
		Loc:  loc,
		Doc:  ds.Objects.Get(object.ID(i % ds.Objects.Len())).Doc,
		Name: "hotspot",
	}
}

// RunE11Skew regenerates experiment E11: shard population balance and
// top-k latency on a skewed (tightly clustered) dataset, fixed grid vs
// STR packing vs online rebalancing after a hotspot bulk load. The
// reproduction target is the balance column: the grid's max/min ratio
// explodes (empty cells) while STR stays within ~2×, and a rebalance
// restores STR-grade balance after drift.
func RunE11Skew(w io.Writer, scale Scale) {
	fmt.Fprintf(w, "E11 — skew-aware sharding (N=%d, shards=%d, 3 tight clusters, %s scale)\n",
		scale.baseN(), skewShards, scale)
	tw := newTable(w)
	fmt.Fprintln(tw, "strategy\tmax shard\tmin shard\tmax/min\timbalance\trebalances\ttop-k µs\t")
	for _, row := range measureSkew(scale) {
		ratio := "inf"
		if row.minLive > 0 {
			ratio = fmt.Sprintf("%.1fx", float64(row.maxLive)/float64(row.minLive))
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%s\t%.2f\t%d\t%s\t\n",
			row.name, row.maxLive, row.minLive, ratio, row.imbalance, row.rebalances, us(row.topk))
	}
	tw.Flush()
}

// addSkewMetrics appends the E11 rows of the JSON report: per-strategy
// shard imbalance and warm top-k latency on the skewed dataset.
func addSkewMetrics(scale Scale, add func(name string, value float64, unit string)) {
	for _, row := range measureSkew(scale) {
		add(fmt.Sprintf("e11/imbalance/%s", row.name), row.imbalance, "x")
		add(fmt.Sprintf("e11/topk/%s", row.name), float64(row.topk.Nanoseconds()), "ns/op")
	}
}
