package bench

import (
	"fmt"
	"io"
	"testing"
	"time"

	"github.com/yask-engine/yask/internal/rtree"
	"github.com/yask-engine/yask/internal/score"
	"github.com/yask-engine/yask/internal/settree"
)

// SigMode selects which signature configurations the machine-readable
// report measures for the e12 rows (`yaskbench -signatures`).
type SigMode int

const (
	// SigBoth measures both configurations — the default, so one CI run
	// exercises the signature path and the exact path.
	SigBoth SigMode = iota
	// SigOn measures only the signature-accelerated path.
	SigOn
	// SigOff measures only the exact path (the whole environment is
	// built with signatures disabled, so the e1 rows cover it too).
	SigOff
)

// ParseSigMode parses the -signatures flag value.
func ParseSigMode(s string) (SigMode, error) {
	switch s {
	case "both", "":
		return SigBoth, nil
	case "on":
		return SigOn, nil
	case "off":
		return SigOff, nil
	}
	return SigBoth, fmt.Errorf("bench: unknown signature mode %q (want on, off, or both)", s)
}

func (m SigMode) String() string {
	switch m {
	case SigOn:
		return "on"
	case SigOff:
		return "off"
	default:
		return "both"
	}
}

// RunE12Signatures regenerates experiment E12: the keyword-signature
// pruning layer of the flat arenas, on vs off. The signatures never
// change answers — the columns to watch are the warm top-k latency, the
// exact keyword set operations per query (the merge-walks the bitmap
// bound replaced), and the signature hit rate.
func RunE12Signatures(w io.Writer, scale Scale) {
	env := NewEnv(scale.baseN())
	off := settree.BuildWith(env.DS.Objects, rtree.DefaultMaxEntries, false)
	fmt.Fprintf(w, "E12 — keyword-signature pruning (SetR-tree, N=%d, %s scale)\n", scale.baseN(), scale)
	tw := newTable(w)
	fmt.Fprintln(tw, "k\t|q.doc|\ton µs\toff µs\tspeedup\texact/op on\texact/op off\thit rate\t")
	var buf []score.Result
	for _, k := range []int{3, 10, 50} {
		for _, kw := range []int{1, 3} {
			qs := env.Queries(scale.queries(), k, kw)
			// Warm both scratch pools before timing.
			for _, q := range qs {
				buf, _ = env.Set.TopKAppend(q, buf[:0])
				buf, _ = off.TopKAppend(q, buf[:0])
			}
			env.Set.Stats().Reset()
			onTime := timeIt(func() {
				for _, q := range qs {
					buf, _ = env.Set.TopKAppend(q, buf[:0])
				}
			}) / time.Duration(len(qs))
			onExact := env.Set.Stats().ExactSetOps() / int64(len(qs))
			hitRate := 0.0
			if probes := env.Set.Stats().SigProbes(); probes > 0 {
				hitRate = float64(env.Set.Stats().SigHits()) / float64(probes)
			}
			off.Stats().Reset()
			offTime := timeIt(func() {
				for _, q := range qs {
					buf, _ = off.TopKAppend(q, buf[:0])
				}
			}) / time.Duration(len(qs))
			offExact := off.Stats().ExactSetOps() / int64(len(qs))
			fmt.Fprintf(tw, "%d\t%d\t%s\t%s\t%.1fx\t%d\t%d\t%.2f\t\n",
				k, kw, us(onTime), us(offTime), float64(offTime)/float64(onTime),
				onExact, offExact, hitRate)
		}
	}
	tw.Flush()
}

// addSignatureMetrics emits the e12 rows of the machine-readable
// report: warm SetR top-k latency, allocations, and exact keyword set
// operations per query with the signature layer on and/or off, plus the
// signature hit rate. The allocs rows are zero and join the bench-smoke
// gate via the regenerated baseline.
func addSignatureMetrics(env *Env, scale Scale, mode SigMode, add func(name string, value float64, unit string)) {
	measure := func(ix *settree.Index, label string) {
		for _, k := range []int{10, 50} {
			qs := env.Queries(scale.queries(), k, 2)
			var buf []score.Result
			for _, q := range qs {
				buf, _ = ix.TopKAppend(q, buf[:0]) // warm the scratch pool
			}
			ix.Stats().Reset()
			t := timeIt(func() {
				for _, q := range qs {
					buf, _ = ix.TopKAppend(q, buf[:0])
				}
			}) / time.Duration(len(qs))
			add(fmt.Sprintf("e12/topk/sig=%s/k=%d", label, k), float64(t.Nanoseconds()), "ns/op")
			add(fmt.Sprintf("e12/exact/sig=%s/k=%d", label, k),
				float64(ix.Stats().ExactSetOps()/int64(len(qs))), "exact-ops/op")
			if probes := ix.Stats().SigProbes(); probes > 0 {
				add(fmt.Sprintf("e12/sighitrate/k=%d", k),
					float64(ix.Stats().SigHits())/float64(probes), "ratio")
			}
			allocs := testing.AllocsPerRun(10, func() {
				for _, q := range qs {
					buf, _ = ix.TopKAppend(q, buf[:0])
				}
			}) / float64(len(qs))
			add(fmt.Sprintf("e12/allocs/sig=%s/k=%d", label, k), allocs, "allocs/op")
		}
	}
	if mode != SigOff {
		measure(env.Set, "on") // env indexes carry signatures unless SigOff
	}
	if mode != SigOn {
		off := env.Set
		if mode != SigOff {
			off = settree.BuildWith(env.DS.Objects, rtree.DefaultMaxEntries, false)
		}
		measure(off, "off")
	}
}
