package bench

import (
	"fmt"
	"io"
	"math/rand"
	"testing"
	"time"

	"github.com/yask-engine/yask/internal/core"
	"github.com/yask-engine/yask/internal/dataset"
	"github.com/yask-engine/yask/internal/score"
)

// e14Distinct returns the distinct-query pool size for the cache
// experiment. Full scale is the issue-shaped setting (10k distinct
// queries); quick keeps the cache-off baseline affordable while
// preserving the same draws/distinct ratio, so the hit rate — and
// therefore the speedup shape — match the full run.
func e14Distinct(s Scale) int {
	if s == Full {
		return 10_000
	}
	return 2_000
}

// e14Stream draws the shared Zipfian request stream: `draws` ranks over
// a pool of `distinct` queries with exponent s≈1.1 — the repeat-heavy
// shape of production query traffic. Both engines replay the identical
// sequence, so the comparison isolates the cache.
func e14Stream(distinct, draws int) []int {
	z := rand.NewZipf(rand.New(rand.NewSource(seed+2)), 1.1, 1, uint64(distinct-1))
	stream := make([]int, draws)
	for i := range stream {
		stream[i] = int(z.Uint64())
	}
	return stream
}

// e14Engines builds the cached/uncached engine pair over one dataset.
// The cached engine's entry bound is sized to hold the whole distinct
// pool: the experiment measures the hit path, not the eviction policy
// (which has its own unit and property tests), so capacity pressure
// would only add noise.
func e14Engines(ds *dataset.Dataset, distinct int) (cached, plain *core.Engine) {
	cached = core.NewEngine(ds.Objects, core.Options{CacheEntries: 2 * distinct})
	plain = core.NewEngine(ds.Objects, core.Options{DisableCache: true})
	return cached, plain
}

// e14Replay runs the stream against one engine and returns the mean
// per-draw latency.
func e14Replay(eng *core.Engine, qs []score.Query, stream []int) time.Duration {
	var buf []score.Result
	d := timeIt(func() {
		for _, i := range stream {
			var err error
			if buf, err = eng.TopKAppend(qs[i], buf[:0]); err != nil {
				panic(err)
			}
		}
	})
	return d / time.Duration(len(stream))
}

// RunE14Cache regenerates experiment E14: the epoch-keyed result cache
// under Zipfian repeat traffic. Both rows replay the same request
// stream; the cache-on row pays the index traversal once per distinct
// query and answers every repeat from the cache, so its mean latency
// approaches miss-cost × (1 − hit rate). The closing line is the gated
// guarantee: a cache hit allocates nothing.
func RunE14Cache(w io.Writer, scale Scale) {
	n, distinct := scale.baseN(), e14Distinct(scale)
	draws := 10 * distinct
	ds, err := dataset.Generate(dataset.DefaultConfig(n, seed))
	if err != nil {
		panic(err)
	}
	qs := dataset.Workload(ds, dataset.WorkloadConfig{
		Queries: distinct, Seed: seed + 1, K: 10, Keywords: 2,
		W: score.DefaultWeights, FromObjectDocs: true,
	})
	stream := e14Stream(distinct, draws)
	cached, plain := e14Engines(ds, distinct)

	fmt.Fprintf(w, "E14 — result cache under Zipfian traffic (N=%d, %d distinct queries, %d draws, s=1.1, %s scale)\n",
		n, distinct, draws, scale)
	tw := newTable(w)
	fmt.Fprintln(tw, "cache\tµs/query\thit rate\tspeedup\t")

	offTime := e14Replay(plain, qs, stream)
	fmt.Fprintf(tw, "off\t%s\t\t1.0x\t\n", us(offTime))

	onTime := e14Replay(cached, qs, stream)
	st := cached.Stats().Cache
	fmt.Fprintf(tw, "on\t%s\t%.3f\t%.1fx\t\n",
		us(onTime), st.HitRate, float64(offTime)/float64(onTime))
	tw.Flush()

	// Warm pass: every draw hits, and a hit must not allocate.
	allocs := testing.AllocsPerRun(5, func() {
		var buf []score.Result
		for _, i := range stream[:distinct] {
			buf, _ = cached.TopKAppend(qs[i], buf[:0])
		}
	}) / float64(distinct)
	fmt.Fprintf(w, "warm hit path: %.0f allocs/op (entries %d, %d KiB)\n",
		allocs, st.Entries, st.Bytes/1024)
}

// addCacheMetrics emits the e14 rows of the machine-readable report:
// cache-off vs cache-on mean latency over the shared Zipfian stream,
// the resulting speedup and hit rate, and the gated zero-allocation
// guarantee of the hit path.
func addCacheMetrics(scale Scale, add func(name string, value float64, unit string)) {
	n, distinct := scale.baseN(), e14Distinct(scale)
	draws := 10 * distinct
	ds, err := dataset.Generate(dataset.DefaultConfig(n, seed))
	if err != nil {
		panic(err)
	}
	qs := dataset.Workload(ds, dataset.WorkloadConfig{
		Queries: distinct, Seed: seed + 1, K: 10, Keywords: 2,
		W: score.DefaultWeights, FromObjectDocs: true,
	})
	stream := e14Stream(distinct, draws)
	cached, plain := e14Engines(ds, distinct)

	offTime := e14Replay(plain, qs, stream)
	add("e14/topk/cache=off", float64(offTime.Nanoseconds()), "ns/op")
	onTime := e14Replay(cached, qs, stream)
	add("e14/topk/cache=on", float64(onTime.Nanoseconds()), "ns/op")
	add("e14/speedup", float64(offTime)/float64(onTime), "x")
	add("e14/hitrate", cached.Stats().Cache.HitRate, "ratio")

	// One warm sub-stream pass, all hits: the allocs row the bench-smoke
	// gate holds at zero.
	var buf []score.Result
	allocs := testing.AllocsPerRun(5, func() {
		for _, i := range stream[:distinct] {
			buf, _ = cached.TopKAppend(qs[i], buf[:0])
		}
	}) / float64(distinct)
	add("e14/allocs/hit", allocs, "allocs/op")
}
