package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"time"

	"github.com/yask-engine/yask"
	"github.com/yask-engine/yask/internal/server"
)

// RunE7Server regenerates experiment E7: the full client→server round
// trip of the demo loop (query → explain → refine) over HTTP against
// the demo dataset, the interaction Figs. 3–5 demonstrate.
func RunE7Server(w io.Writer, scale Scale) {
	engine := yask.HKDemoEngine()
	srv := httptest.NewServer(server.New(engine, server.Config{}))
	defer srv.Close()

	fmt.Fprintf(w, "E7 — HTTP round trips over the %d-hotel demo (%s scale)\n", engine.Len(), scale)
	tw := newTable(w)
	fmt.Fprintln(tw, "operation\tms/call\tcalls\t")

	iters := 20
	if scale == Full {
		iters = 100
	}

	post := func(path string, body any, out any) {
		buf, err := json.Marshal(body)
		if err != nil {
			panic(err)
		}
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(buf))
		if err != nil {
			panic(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			raw, _ := io.ReadAll(resp.Body)
			panic(fmt.Sprintf("%s: status %d: %s", path, resp.StatusCode, raw))
		}
		if out != nil {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				panic(err)
			}
		}
	}

	type queryResp struct {
		SessionID string        `json:"sessionId"`
		Results   []yask.Result `json:"results"`
	}

	// Deterministic sequence of query points around the HK districts.
	locs := []struct{ x, y float64 }{
		{114.158, 22.281}, {114.172, 22.298}, {114.169, 22.319}, {114.184, 22.280},
	}
	keywordSets := [][]string{{"wifi", "breakfast"}, {"clean", "wifi"}, {"harbour", "view"}}

	var queryTotal, explainTotal, prefTotal, kwTotal time.Duration
	queries, whynots := 0, 0
	for i := 0; i < iters; i++ {
		loc := locs[i%len(locs)]
		kws := keywordSets[i%len(keywordSets)]
		var qr queryResp
		queryTotal += timeIt(func() {
			post("/api/query", map[string]any{
				"x": loc.x, "y": loc.y, "keywords": kws, "k": 3,
			}, &qr)
		})
		queries++

		// Pick a missing object: the first object not in the result.
		inResult := map[yask.ObjectID]bool{}
		for _, r := range qr.Results {
			inResult[r.ID] = true
		}
		var missing yask.ObjectID
		for id := yask.ObjectID(0); int(id) < engine.Len(); id++ {
			if !inResult[id] {
				missing = id
				break
			}
		}

		explainTotal += timeIt(func() {
			post("/api/explain", map[string]any{
				"sessionId": qr.SessionID, "missing": []yask.ObjectID{missing},
			}, nil)
		})
		prefTotal += timeIt(func() {
			post("/api/whynot", map[string]any{
				"sessionId": qr.SessionID, "missing": []yask.ObjectID{missing}, "model": "preference",
			}, nil)
		})
		kwTotal += timeIt(func() {
			post("/api/whynot", map[string]any{
				"sessionId": qr.SessionID, "missing": []yask.ObjectID{missing}, "model": "keyword",
			}, nil)
		})
		whynots++
	}
	fmt.Fprintf(tw, "query\t%s\t%d\t\n", ms(queryTotal/time.Duration(queries)), queries)
	fmt.Fprintf(tw, "explain\t%s\t%d\t\n", ms(explainTotal/time.Duration(whynots)), whynots)
	fmt.Fprintf(tw, "whynot-preference\t%s\t%d\t\n", ms(prefTotal/time.Duration(whynots)), whynots)
	fmt.Fprintf(tw, "whynot-keyword\t%s\t%d\t\n", ms(kwTotal/time.Duration(whynots)), whynots)
	tw.Flush()
}

// Experiments maps experiment IDs to their runners, in report order.
var Experiments = []struct {
	ID   string
	Name string
	Run  func(io.Writer, Scale)
}{
	{"e1", "top-k query engines", RunE1TopK},
	{"e2", "index construction", RunE2IndexBuild},
	{"e3", "preference adjustment", RunE3Preference},
	{"e4", "keyword adaption", RunE4Keyword},
	{"e5", "lambda impact", RunE5Lambda},
	{"e6", "scalability", RunE6Scale},
	{"e7", "server round trip", RunE7Server},
	{"e8", "SetR-tree bound ablation", RunE8BoundAblation},
	{"e9", "concurrent batch executor", RunE9Batch},
	{"e10", "sharded scatter-gather executor", RunE10Shard},
	{"e11", "skew-aware sharding", RunE11Skew},
	{"e12", "keyword-signature pruning", RunE12Signatures},
	{"e13", "durability cost", RunE13Durability},
	{"e14", "result cache under Zipfian traffic", RunE14Cache},
	{"e15", "mmap arena boot", RunE15MmapBoot},
	{"e16", "cancellation overhead", RunE16CancelOverhead},
}
