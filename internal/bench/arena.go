package bench

import (
	"fmt"
	"io"
	"os"
	"testing"
	"time"

	"github.com/yask-engine/yask/internal/core"
	"github.com/yask-engine/yask/internal/dataset"
	"github.com/yask-engine/yask/internal/score"
	"github.com/yask-engine/yask/internal/wal"
)

// e15Dir seeds a durable data directory with the dataset and returns
// it; the first-boot checkpoint also writes the arena files.
func e15Dir(ds *dataset.Dataset) string {
	dir, err := os.MkdirTemp("", "yask-e15-*")
	if err != nil {
		panic(err)
	}
	eng, err := core.Open(ds.Objects.All(), core.Options{
		DataDir: dir, Fsync: wal.SyncNone, Vocab: ds.Vocab,
		RefreshEvery: 1 << 30, MmapArenas: true,
	})
	if err != nil {
		panic(err)
	}
	if err := eng.Close(); err != nil {
		panic(err)
	}
	return dir
}

// e15Boot reopens dir with or without arena mapping and returns the
// engine and the wall-clock boot time.
func e15Boot(ds *dataset.Dataset, dir string, mmap bool) (*core.Engine, time.Duration) {
	var eng *core.Engine
	d := timeIt(func() {
		var err error
		eng, err = core.Open(nil, core.Options{
			DataDir: dir, Fsync: wal.SyncNone, Vocab: ds.Vocab,
			RefreshEvery: 1 << 30, MmapArenas: mmap,
		})
		if err != nil {
			panic(err)
		}
	})
	if mmap {
		st := eng.Stats().Durability.Arena
		if st == nil || !st.MmapBoot || !st.RebuildSkipped {
			panic(fmt.Sprintf("e15: mmap boot fell back to rebuild: %+v", st))
		}
	}
	return eng, d
}

// e15QueryPath measures the warm top-k path over the engine's set
// index: mean latency and allocations per query.
func e15QueryPath(eng *core.Engine, ds *dataset.Dataset, scale Scale) (time.Duration, float64) {
	qs := dataset.Workload(ds, dataset.WorkloadConfig{
		Queries: scale.queries(), Seed: seed + 2, K: 10, Keywords: 2,
		W: score.DefaultWeights, FromObjectDocs: true,
	})
	set := eng.SetIndex()
	var buf []score.Result
	for _, q := range qs {
		buf, _ = set.TopKAppend(q, buf[:0])
	}
	d := timeIt(func() {
		for _, q := range qs {
			buf, _ = set.TopKAppend(q, buf[:0])
		}
	}) / time.Duration(len(qs))
	allocs := testing.AllocsPerRun(10, func() {
		for _, q := range qs {
			buf, _ = set.TopKAppend(q, buf[:0])
		}
	}) / float64(len(qs))
	return d, allocs
}

// RunE15MmapBoot regenerates experiment E15: boot time with mmap'd
// index arenas against the ordinary checkpoint rebuild, and the
// query-path guarantee that the mapped columns serve warm top-k without
// allocating. The rebuild boot pays O(n log n) bulk loads per index
// family; the mmap boot opens and verifies the arena files and serves
// straight off the mapping.
func RunE15MmapBoot(w io.Writer, scale Scale) {
	n := scale.baseN()
	ds, err := dataset.Generate(dataset.DefaultConfig(n, seed))
	if err != nil {
		panic(err)
	}
	dir := e15Dir(ds)
	defer os.RemoveAll(dir)

	fmt.Fprintf(w, "E15 — mmap arena boot (N=%d, %s scale)\n", n, scale)
	tw := newTable(w)
	fmt.Fprintln(tw, "boot\tms\tmapped families\t")

	rebuilt, dRebuild := e15Boot(ds, dir, false)
	rebuilt.Close()
	fmt.Fprintf(tw, "rebuild\t%s\t0\t\n", ms(dRebuild))

	mapped, dMmap := e15Boot(ds, dir, true)
	defer mapped.Close()
	st := mapped.Stats().Durability.Arena
	fmt.Fprintf(tw, "mmap\t%s\t%d\t\n", ms(dMmap), st.MappedNow)
	tw.Flush()
	if dMmap > 0 {
		fmt.Fprintf(w, "boot speedup: %.1fx (index rebuild skipped: %v)\n",
			float64(dRebuild)/float64(dMmap), st.RebuildSkipped)
	}

	qTime, allocs := e15QueryPath(mapped, ds, scale)
	fmt.Fprintf(w, "warm top-k on mapped arenas: %s µs/op, %.0f allocs/op\n", us(qTime), allocs)
}

// addArenaMetrics emits the e15 rows of the machine-readable report:
// boot time for rebuild vs mmap, and the gated guarantee that warm
// top-k on the mapped file-backed columns allocates nothing.
func addArenaMetrics(scale Scale, add func(name string, value float64, unit string)) {
	ds, err := dataset.Generate(dataset.DefaultConfig(scale.baseN(), seed))
	if err != nil {
		panic(err)
	}
	dir := e15Dir(ds)
	defer os.RemoveAll(dir)

	rebuilt, dRebuild := e15Boot(ds, dir, false)
	rebuilt.Close()
	add("e15/boot/rebuild", float64(dRebuild.Nanoseconds()), "ns")

	mapped, dMmap := e15Boot(ds, dir, true)
	defer mapped.Close()
	add("e15/boot/mmap", float64(dMmap.Nanoseconds()), "ns")

	_, allocs := e15QueryPath(mapped, ds, scale)
	add("e15/allocs/topk/mmap", allocs, "allocs/op")
}
