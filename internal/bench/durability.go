package bench

import (
	"fmt"
	"io"
	"os"
	"testing"
	"time"

	"github.com/yask-engine/yask/internal/core"
	"github.com/yask-engine/yask/internal/dataset"
	"github.com/yask-engine/yask/internal/object"
	"github.com/yask-engine/yask/internal/score"
	"github.com/yask-engine/yask/internal/wal"
)

// e13Muts returns how many mutations each durability measurement logs.
// Kept modest: the "always" policy pays one fsync per mutation, and the
// point is the per-mutation cost, not disk endurance.
func e13Muts(s Scale) int {
	if s == Full {
		return 1000
	}
	return 200
}

// e13Open boots a durable engine over the dataset in dir. Refreshes are
// batched far out so the measurement isolates the durability cost of a
// mutation (log append + fsync policy) from index rebuild work, which
// is identical with and without durability.
func e13Open(ds *dataset.Dataset, dir string, policy wal.SyncPolicy) *core.Engine {
	eng, err := core.Open(ds.Objects.All(), core.Options{
		DataDir: dir, Fsync: policy, Vocab: ds.Vocab,
		RefreshEvery: 1 << 30,
	})
	if err != nil {
		panic(err)
	}
	return eng
}

// e13Insert appends m objects cloned from the dataset and returns the
// mean per-mutation latency.
func e13Insert(eng *core.Engine, ds *dataset.Dataset, m int) time.Duration {
	src := ds.Objects.All()
	d := timeIt(func() {
		for i := 0; i < m; i++ {
			o := src[i%len(src)]
			if _, err := eng.Insert(object.Object{Loc: o.Loc, Doc: o.Doc, Name: o.Name}); err != nil {
				panic(err)
			}
		}
	})
	return d / time.Duration(m)
}

// RunE13Durability regenerates experiment E13: the cost of crash-safe
// durability. One row per fsync policy measures the per-mutation price
// of the write-ahead log against the memory-only engine, plus the
// recovery time of reopening the directory (checkpoint load + WAL
// replay). The closing line is the guarantee the CI baseline gates:
// the warm query path is untouched by durability — same arena indexes,
// zero allocations — because the WAL sits entirely on the mutation
// path.
func RunE13Durability(w io.Writer, scale Scale) {
	n, m := scale.baseN(), e13Muts(scale)
	ds, err := dataset.Generate(dataset.DefaultConfig(n, seed))
	if err != nil {
		panic(err)
	}
	fmt.Fprintf(w, "E13 — durability cost (N=%d, %d mutations per policy, %s scale)\n", n, m, scale)
	tw := newTable(w)
	fmt.Fprintln(tw, "policy\tinsert µs\tvs memory\trecovery ms\treplayed\t")

	mem := core.NewEngine(object.NewCollection(ds.Objects.All()), core.Options{RefreshEvery: 1 << 30})
	memIns := e13Insert(mem, ds, m)
	fmt.Fprintf(tw, "memory\t%s\t%.1fx\t\t\t\n", us(memIns), 1.0)

	for _, policy := range []wal.SyncPolicy{wal.SyncNone, wal.SyncInterval, wal.SyncAlways} {
		dir, err := os.MkdirTemp("", "yask-e13-*")
		if err != nil {
			panic(err)
		}
		eng := e13Open(ds, dir, policy)
		ins := e13Insert(eng, ds, m)
		if err := eng.Close(); err != nil {
			panic(err)
		}
		recovery := timeIt(func() {
			eng = e13Open(ds, dir, policy)
		})
		replayed := 0
		if d := eng.Stats().Durability; d != nil {
			replayed = d.ReplayedRecords
		}
		eng.Close()
		os.RemoveAll(dir)
		fmt.Fprintf(tw, "%s\t%s\t%.1fx\t%s\t%d\t\n",
			policy, us(ins), float64(ins)/float64(memIns), ms(recovery), replayed)
	}
	tw.Flush()

	// The query-path guarantee: a durable engine answers from the same
	// frozen arenas as a memory one.
	dir, err := os.MkdirTemp("", "yask-e13-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	eng := e13Open(ds, dir, wal.SyncAlways)
	defer eng.Close()
	e13Insert(eng, ds, m)
	eng.Refresh()
	qTime, allocs := e13QueryPath(eng, ds, scale)
	fmt.Fprintf(w, "warm top-k with durability on: %s µs/op, %.0f allocs/op\n", us(qTime), allocs)
}

// e13QueryPath measures the warm arena top-k path of a durable engine:
// mean latency and allocations per query.
func e13QueryPath(eng *core.Engine, ds *dataset.Dataset, scale Scale) (time.Duration, float64) {
	qs := dataset.Workload(ds, dataset.WorkloadConfig{
		Queries: scale.queries(), Seed: seed + 1, K: 10, Keywords: 2,
		W: score.DefaultWeights, FromObjectDocs: true,
	})
	set := eng.SetIndex()
	var buf []score.Result
	for _, q := range qs {
		buf, _ = set.TopKAppend(q, buf[:0])
	}
	d := timeIt(func() {
		for _, q := range qs {
			buf, _ = set.TopKAppend(q, buf[:0])
		}
	}) / time.Duration(len(qs))
	allocs := testing.AllocsPerRun(10, func() {
		for _, q := range qs {
			buf, _ = set.TopKAppend(q, buf[:0])
		}
	}) / float64(len(qs))
	return d, allocs
}

// addDurabilityMetrics emits the e13 rows of the machine-readable
// report: per-policy mutation latency, recovery replay speed, and the
// gated guarantee that the warm query path of a durable engine stays
// allocation-free.
func addDurabilityMetrics(scale Scale, add func(name string, value float64, unit string)) {
	n, m := scale.baseN(), e13Muts(scale)
	ds, err := dataset.Generate(dataset.DefaultConfig(n, seed))
	if err != nil {
		panic(err)
	}

	mem := core.NewEngine(object.NewCollection(ds.Objects.All()), core.Options{RefreshEvery: 1 << 30})
	add("e13/insert/memory", float64(e13Insert(mem, ds, m).Nanoseconds()), "ns/op")

	for _, policy := range []wal.SyncPolicy{wal.SyncNone, wal.SyncInterval, wal.SyncAlways} {
		dir, err := os.MkdirTemp("", "yask-e13-*")
		if err != nil {
			panic(err)
		}
		eng := e13Open(ds, dir, policy)
		add(fmt.Sprintf("e13/insert/fsync=%s", policy),
			float64(e13Insert(eng, ds, m).Nanoseconds()), "ns/op")
		if err := eng.Close(); err != nil {
			panic(err)
		}
		if policy == wal.SyncAlways {
			recovery := timeIt(func() {
				eng = e13Open(ds, dir, policy)
			})
			add("e13/recovery/replay", float64(recovery.Nanoseconds())/float64(m), "ns/record")
			eng.Refresh()
			_, allocs := e13QueryPath(eng, ds, scale)
			add("e13/allocs/topk/durable", allocs, "allocs/op")
			eng.Close()
		}
		os.RemoveAll(dir)
	}
}
