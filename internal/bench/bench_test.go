package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestExperimentsRunQuickScale smoke-tests every experiment runner at a
// tiny scale: each must produce a non-empty table and not panic.
func TestExperimentsRunQuickScale(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test skipped in -short mode")
	}
	for _, e := range Experiments {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			e.Run(&buf, Quick)
			out := buf.String()
			if !strings.Contains(out, "—") {
				t.Fatalf("experiment %s produced no header:\n%s", e.ID, out)
			}
			if len(strings.Split(strings.TrimSpace(out), "\n")) < 3 {
				t.Fatalf("experiment %s produced no rows:\n%s", e.ID, out)
			}
		})
	}
}

func TestEnvHelpers(t *testing.T) {
	env := NewEnv(500)
	if env.DS.Objects.Len() != 500 {
		t.Fatalf("env size %d", env.DS.Objects.Len())
	}
	qs := env.Queries(5, 3, 2)
	if len(qs) != 5 {
		t.Fatalf("queries %d", len(qs))
	}
	m := env.MissingFor(qs[0], 2)
	if len(m) != 2 {
		t.Fatalf("missing %v", m)
	}
	// The missing objects must really be outside the top-k.
	res, _ := env.Set.TopK(qs[0])
	for _, r := range res {
		for _, id := range m {
			if r.Obj.ID == id {
				t.Fatalf("missing object %d is in the result", id)
			}
		}
	}
}

func TestParseSigMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SigMode
	}{{"on", SigOn}, {"off", SigOff}, {"both", SigBoth}, {"", SigBoth}} {
		got, err := ParseSigMode(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseSigMode(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseSigMode("sometimes"); err == nil {
		t.Fatal("ParseSigMode accepted a bogus mode")
	}
	if SigOn.String() != "on" || SigOff.String() != "off" || SigBoth.String() != "both" {
		t.Fatal("SigMode names wrong")
	}
}

func TestScaleSettings(t *testing.T) {
	if Quick.String() != "quick" || Full.String() != "full" {
		t.Fatal("scale names wrong")
	}
	if len(Quick.sizes()) == 0 || len(Full.sizes()) == 0 {
		t.Fatal("empty size sweeps")
	}
	if Quick.baseN() >= Full.baseN() {
		t.Fatal("quick scale should be smaller than full")
	}
}

// TestWriteJSONReport smoke-tests the machine-readable snapshot: it
// must be valid JSON with the expected schema and a non-empty metric
// list where every metric has a name and unit.
func TestWriteJSONReport(t *testing.T) {
	if testing.Short() {
		t.Skip("JSON report smoke test skipped in -short mode")
	}
	var buf bytes.Buffer
	if err := WriteJSONReport(&buf, Quick); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if rep.Schema != "yask-bench/v1" {
		t.Fatalf("schema %q", rep.Schema)
	}
	if len(rep.Metrics) == 0 {
		t.Fatal("no metrics")
	}
	for _, m := range rep.Metrics {
		if m.Name == "" || m.Unit == "" {
			t.Fatalf("incomplete metric %+v", m)
		}
	}
}
