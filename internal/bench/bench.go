// Package bench implements the experiment harness behind both the
// `yaskbench` command and the root-level testing.B benchmarks. Each
// exported Run function regenerates one experiment (E1–E16, see the
// Experiments registry in server.go): it builds the workload, sweeps
// the parameter the experiment varies, and prints one table in the
// style the papers report (who wins, by what factor, where the
// crossover is).
//
// Absolute numbers depend on the machine; the *shape* of each table is
// the reproduction target. MeasureReportMode (batch.go) produces the
// machine-readable snapshot diffed against BENCH_baseline.json in CI.
package bench

import (
	"fmt"
	"io"
	"runtime"
	"text/tabwriter"
	"time"

	"github.com/yask-engine/yask/internal/core"
	"github.com/yask-engine/yask/internal/dataset"
	"github.com/yask-engine/yask/internal/irtree"
	"github.com/yask-engine/yask/internal/kcrtree"
	"github.com/yask-engine/yask/internal/object"
	"github.com/yask-engine/yask/internal/rtree"
	"github.com/yask-engine/yask/internal/score"
	"github.com/yask-engine/yask/internal/settree"
)

// Scale selects how large the experiment datasets are.
type Scale int

const (
	// Quick keeps every experiment under a few seconds; used by tests
	// and the default yaskbench run.
	Quick Scale = iota
	// Full is the paper-shaped run (hundreds of thousands to a million
	// objects); minutes of runtime.
	Full
)

func (s Scale) String() string {
	if s == Full {
		return "full"
	}
	return "quick"
}

// sizes returns the dataset-size sweep for scalability experiments.
func (s Scale) sizes() []int {
	if s == Full {
		return []int{10_000, 100_000, 1_000_000}
	}
	return []int{2_000, 10_000, 50_000}
}

// baseN returns the dataset size for fixed-size experiments.
func (s Scale) baseN() int {
	if s == Full {
		return 100_000
	}
	return 10_000
}

// queries returns how many queries each measurement averages over.
func (s Scale) queries() int {
	if s == Full {
		return 50
	}
	return 20
}

const seed = 42

// Env bundles the shared experiment state: one dataset with the three
// engine indexes built over it.
type Env struct {
	DS     *dataset.Dataset
	Set    *settree.Index
	Kc     *kcrtree.Index
	Ir     *irtree.Index
	Engine *core.Engine
}

// NewEnv builds the experiment environment for n objects.
func NewEnv(n int) *Env { return NewEnvSig(n, true) }

// NewEnvSig is NewEnv with the keyword-signature pruning layer toggled
// on every index and the engine — the ablation switch of experiment E12
// and `yaskbench -signatures=off`.
func NewEnvSig(n int, signatures bool) *Env {
	ds, err := dataset.Generate(dataset.DefaultConfig(n, seed))
	if err != nil {
		// Config is static; failure is a programming error.
		panic(err)
	}
	env := &Env{
		DS:  ds,
		Set: settree.BuildWith(ds.Objects, rtree.DefaultMaxEntries, signatures),
		Kc:  kcrtree.BuildWith(ds.Objects, rtree.DefaultMaxEntries, signatures),
		Ir:  irtree.Build(ds.Objects, ds.Vocab.Len(), rtree.DefaultMaxEntries),
		// The experiments over this engine measure index traversal and
		// executor scheduling; the result cache would short-circuit every
		// repeated query, so it stays off here. E14 builds its own
		// cache-enabled engine to measure exactly that effect.
		Engine: core.NewEngine(ds.Objects, core.Options{DisableSignatures: !signatures, DisableCache: true}),
	}
	env.Ir.SetSignatures(signatures)
	return env
}

// Queries generates a deterministic query workload over the env.
func (e *Env) Queries(n, k, kw int) []score.Query {
	return dataset.Workload(e.DS, dataset.WorkloadConfig{
		Queries: n, Seed: seed + 1, K: k, Keywords: kw,
		W: score.DefaultWeights, FromObjectDocs: true,
	})
}

// MissingFor returns `count` valid missing objects for q: the objects
// ranked k+1 … k+count.
func (e *Env) MissingFor(q score.Query, count int) []object.ID {
	extended := q
	extended.K = q.K + count
	res, _ := e.Set.TopK(extended)
	if len(res) <= q.K {
		return nil
	}
	ids := make([]object.ID, 0, count)
	for _, r := range res[q.K:] {
		ids = append(ids, r.Obj.ID)
	}
	return ids
}

func newTable(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 4, 0, 2, ' ', tabwriter.AlignRight)
}

// timeIt runs fn and returns the wall-clock duration.
func timeIt(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}

// us formats a duration as microseconds with 1 decimal.
func us(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d.Nanoseconds())/1e3)
}

// ms formats a duration as milliseconds with 2 decimals.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d.Nanoseconds())/1e6)
}

// heapAllocMB measures live heap after a GC, in MiB.
func heapAllocMB() float64 {
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return float64(m.HeapAlloc) / (1 << 20)
}

// RunE1TopK regenerates experiment E1: spatial keyword top-k latency
// and node accesses, SetR-tree vs IR-tree vs full scan, sweeping k and
// the number of query keywords.
func RunE1TopK(w io.Writer, scale Scale) {
	env := NewEnv(scale.baseN())
	fmt.Fprintf(w, "E1 — top-k query engines (N=%d, %s scale)\n", scale.baseN(), scale)
	tw := newTable(w)
	fmt.Fprintln(tw, "k\t|q.doc|\tSetR µs\tSetR nodes\tIR µs\tIR nodes\tscan µs\tspeedup\t")
	for _, k := range []int{1, 3, 5, 10, 20, 50} {
		for _, kw := range []int{1, 3} {
			qs := env.Queries(scale.queries(), k, kw)

			env.Set.Stats().Reset()
			setTime := timeIt(func() {
				for _, q := range qs {
					env.Set.TopK(q)
				}
			}) / time.Duration(len(qs))
			setNodes := env.Set.Stats().NodeAccesses() / int64(len(qs))

			env.Ir.Stats().Reset()
			irTime := timeIt(func() {
				for _, q := range qs {
					env.Ir.TopK(q)
				}
			}) / time.Duration(len(qs))
			irNodes := env.Ir.Stats().NodeAccesses() / int64(len(qs))

			scanTime := timeIt(func() {
				for _, q := range qs {
					settree.ScanTopK(env.DS.Objects, q)
				}
			}) / time.Duration(len(qs))

			speedup := float64(scanTime) / float64(setTime)
			fmt.Fprintf(tw, "%d\t%d\t%s\t%d\t%s\t%d\t%s\t%.1fx\t\n",
				k, kw, us(setTime), setNodes, us(irTime), irNodes, us(scanTime), speedup)
		}
	}
	tw.Flush()
}

// RunE2IndexBuild regenerates experiment E2: construction time, node
// count, and live-heap cost of the four indexes across dataset sizes.
func RunE2IndexBuild(w io.Writer, scale Scale) {
	fmt.Fprintf(w, "E2 — index construction (%s scale)\n", scale)
	tw := newTable(w)
	fmt.Fprintln(tw, "N\tindex\tbuild ms\tnodes\theight\theap MB\t")
	for _, n := range scale.sizes() {
		ds, err := dataset.Generate(dataset.DefaultConfig(n, seed))
		if err != nil {
			panic(err)
		}
		type build struct {
			name string
			// fn returns the built index (kept alive through the heap
			// measurement) plus its node count and height.
			fn func() (index any, nodes, height int)
		}
		builds := []build{
			{"R-tree", func() (any, int, int) {
				t := rtree.New(rtree.NoAug[object.Object](), rtree.DefaultMaxEntries)
				entries := make([]rtree.LeafEntry[object.Object], ds.Objects.Len())
				for i, o := range ds.Objects.All() {
					entries[i] = rtree.LeafEntry[object.Object]{Rect: o.Rect(), Item: o}
				}
				t.BulkLoad(entries)
				return t, t.NodeCount(), t.Height()
			}},
			{"SetR-tree", func() (any, int, int) {
				t := settree.Build(ds.Objects, rtree.DefaultMaxEntries)
				return t, t.Tree().NodeCount(), t.Tree().Height()
			}},
			{"KcR-tree", func() (any, int, int) {
				t := kcrtree.Build(ds.Objects, rtree.DefaultMaxEntries)
				return t, t.Tree().NodeCount(), t.Tree().Height()
			}},
			{"IR-tree", func() (any, int, int) {
				t := irtree.Build(ds.Objects, ds.Vocab.Len(), rtree.DefaultMaxEntries)
				return t, t.Tree().NodeCount(), t.Tree().Height()
			}},
		}
		for _, b := range builds {
			before := heapAllocMB()
			var sink any
			var nodes, height int
			d := timeIt(func() { sink, nodes, height = b.fn() })
			after := heapAllocMB() // sink still referenced: measures the index
			fmt.Fprintf(tw, "%d\t%s\t%s\t%d\t%d\t%.1f\t\n", n, b.name, ms(d), nodes, height, after-before)
			runtime.KeepAlive(sink)
		}
	}
	tw.Flush()
}

// RunE3Preference regenerates experiment E3: preference-adjustment
// latency and result penalty for the three algorithms, sweeping the
// number of missing objects.
func RunE3Preference(w io.Writer, scale Scale) {
	env := NewEnv(scale.baseN())
	fmt.Fprintf(w, "E3 — preference adjustment (N=%d, λ=0.5, %s scale)\n", scale.baseN(), scale)
	tw := newTable(w)
	fmt.Fprintln(tw, "|M|\talgorithm\tms/query\tavg penalty\tavg Δk\tavg Δw\t")
	algos := []core.PreferenceAlgorithm{core.PrefSweepIndexed, core.PrefSweep, core.PrefSampling}
	for _, nMiss := range []int{1, 2, 4, 8} {
		qs := env.Queries(scale.queries(), 5, 2)
		for _, alg := range algos {
			var total time.Duration
			var penalty, dw float64
			var dk, count int
			for _, q := range qs {
				missing := env.MissingFor(q, nMiss)
				if len(missing) < nMiss {
					continue
				}
				var res core.PreferenceResult
				var err error
				total += timeIt(func() {
					res, err = env.Engine.AdjustPreference(q, missing, core.PreferenceOptions{
						Lambda: 0.5, Algorithm: alg, Samples: 64,
					})
				})
				if err != nil {
					panic(err)
				}
				penalty += res.Penalty
				dw += res.DeltaW
				dk += res.DeltaK
				count++
			}
			if count == 0 {
				continue
			}
			fmt.Fprintf(tw, "%d\t%s\t%s\t%.4f\t%.1f\t%.4f\t\n",
				nMiss, alg, ms(total/time.Duration(count)),
				penalty/float64(count), float64(dk)/float64(count), dw/float64(count))
		}
	}
	tw.Flush()
}

// RunE4Keyword regenerates experiment E4: keyword-adaption latency and
// pruning effectiveness, bound-and-prune vs exhaustive, sweeping the
// query keyword count.
func RunE4Keyword(w io.Writer, scale Scale) {
	// Keyword adaption cost is dominated by the candidate space, not N;
	// a moderate N keeps the exhaustive baseline feasible.
	n := scale.baseN()
	if scale == Full {
		n = 50_000
	}
	env := NewEnv(n)
	fmt.Fprintf(w, "E4 — keyword adaption (N=%d, λ=0.5, %s scale)\n", n, scale)
	tw := newTable(w)
	fmt.Fprintln(tw, "|q.doc|\talgorithm\tms/query\tavg penalty\tcand gen\tcand eval\t")
	algos := []core.KeywordAlgorithm{core.KwBoundPrune, core.KwExhaustive}
	for _, kw := range []int{1, 2, 3} {
		qs := env.Queries(scale.queries(), 5, kw)
		for _, alg := range algos {
			var total time.Duration
			var penalty float64
			var gen, eval, count int
			for _, q := range qs {
				missing := env.MissingFor(q, 1)
				if len(missing) == 0 {
					continue
				}
				var res core.KeywordResult
				var err error
				total += timeIt(func() {
					res, err = env.Engine.AdaptKeywords(q, missing, core.KeywordOptions{
						Lambda: 0.5, Algorithm: alg,
					})
				})
				if err != nil {
					panic(err)
				}
				penalty += res.Penalty
				gen += res.CandidatesGenerated
				eval += res.CandidatesEvaluated
				count++
			}
			if count == 0 {
				continue
			}
			fmt.Fprintf(tw, "%d\t%s\t%s\t%.4f\t%d\t%d\t\n",
				kw, alg, ms(total/time.Duration(count)),
				penalty/float64(count), gen/count, eval/count)
		}
	}
	tw.Flush()
}

// RunE5Lambda regenerates experiment E5: the impact of the penalty
// trade-off λ on both refinement models — the demo's "Query Refinement
// Effectiveness" scenario.
func RunE5Lambda(w io.Writer, scale Scale) {
	env := NewEnv(scale.baseN())
	fmt.Fprintf(w, "E5 — λ impact on refinement quality (N=%d, %s scale)\n", scale.baseN(), scale)
	tw := newTable(w)
	fmt.Fprintln(tw, "λ\tpref penalty\tpref Δk\tpref Δw\tkw penalty\tkw Δk\tkw Δdoc\t")
	qs := env.Queries(scale.queries(), 5, 2)
	for _, lambda := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		var pPen, pDw, kPen float64
		var pDk, kDk, kDd, count int
		for _, q := range qs {
			missing := env.MissingFor(q, 2)
			if len(missing) < 2 {
				continue
			}
			pres, err := env.Engine.AdjustPreference(q, missing, core.PreferenceOptions{Lambda: lambda})
			if err != nil {
				panic(err)
			}
			kres, err := env.Engine.AdaptKeywords(q, missing, core.KeywordOptions{Lambda: lambda})
			if err != nil {
				panic(err)
			}
			pPen += pres.Penalty
			pDw += pres.DeltaW
			pDk += pres.DeltaK
			kPen += kres.Penalty
			kDk += kres.DeltaK
			kDd += kres.DeltaDoc
			count++
		}
		if count == 0 {
			continue
		}
		c := float64(count)
		fmt.Fprintf(tw, "%.1f\t%.4f\t%.1f\t%.4f\t%.4f\t%.1f\t%.1f\t\n",
			lambda, pPen/c, float64(pDk)/c, pDw/c, kPen/c, float64(kDk)/c, float64(kDd)/c)
	}
	tw.Flush()
}

// RunE6Scale regenerates experiment E6: end-to-end latency of the three
// operations as the dataset grows — the paper's "scalable ... for data
// sets with millions of objects" claim.
func RunE6Scale(w io.Writer, scale Scale) {
	fmt.Fprintf(w, "E6 — scalability (%s scale)\n", scale)
	tw := newTable(w)
	fmt.Fprintln(tw, "N\tbuild ms\ttop-k µs\texplain µs\tpref ms\tkeyword ms\t")
	for _, n := range scale.sizes() {
		var env *Env
		buildTime := timeIt(func() { env = NewEnv(n) })
		qs := env.Queries(scale.queries(), 5, 2)

		topk := timeIt(func() {
			for _, q := range qs {
				env.Set.TopK(q)
			}
		}) / time.Duration(len(qs))

		var explainTotal, prefTotal, kwTotal time.Duration
		count := 0
		for _, q := range qs {
			missing := env.MissingFor(q, 1)
			if len(missing) == 0 {
				continue
			}
			explainTotal += timeIt(func() {
				if _, err := env.Engine.Explain(q, missing); err != nil {
					panic(err)
				}
			})
			prefTotal += timeIt(func() {
				if _, err := env.Engine.AdjustPreference(q, missing, core.PreferenceOptions{Lambda: 0.5}); err != nil {
					panic(err)
				}
			})
			kwTotal += timeIt(func() {
				if _, err := env.Engine.AdaptKeywords(q, missing, core.KeywordOptions{Lambda: 0.5}); err != nil {
					panic(err)
				}
			})
			count++
		}
		if count == 0 {
			continue
		}
		fmt.Fprintf(tw, "%d\t%s\t%s\t%s\t%s\t%s\t\n",
			n, ms(buildTime), us(topk),
			us(explainTotal/time.Duration(count)),
			ms(prefTotal/time.Duration(count)),
			ms(kwTotal/time.Duration(count)))
	}
	tw.Flush()
}

// RunE8BoundAblation regenerates the bound ablation: the
// SetR-tree's doc-length-tightened Jaccard bound vs the textbook
// |q ∩ U|/|q ∪ I| bound, measured as top-k latency and node accesses.
func RunE8BoundAblation(w io.Writer, scale Scale) {
	env := NewEnv(scale.baseN())
	basic := settree.BuildWith(env.DS.Objects, rtree.DefaultMaxEntries, false)
	basic.SetBoundMode(settree.BoundBasic)
	fmt.Fprintf(w, "E8 — SetR-tree bound ablation (N=%d, %s scale)\n", scale.baseN(), scale)
	tw := newTable(w)
	fmt.Fprintln(tw, "k\t|q.doc|\tfull µs\tfull nodes\tbasic µs\tbasic nodes\t")
	for _, k := range []int{3, 10, 50} {
		for _, kw := range []int{1, 3} {
			qs := env.Queries(scale.queries(), k, kw)
			env.Set.Stats().Reset()
			fullTime := timeIt(func() {
				for _, q := range qs {
					env.Set.TopK(q)
				}
			}) / time.Duration(len(qs))
			fullNodes := env.Set.Stats().NodeAccesses() / int64(len(qs))
			basic.Stats().Reset()
			basicTime := timeIt(func() {
				for _, q := range qs {
					basic.TopK(q)
				}
			}) / time.Duration(len(qs))
			basicNodes := basic.Stats().NodeAccesses() / int64(len(qs))
			fmt.Fprintf(tw, "%d\t%d\t%s\t%d\t%s\t%d\t\n",
				k, kw, us(fullTime), fullNodes, us(basicTime), basicNodes)
		}
	}
	tw.Flush()
}
