package bench

import (
	"context"
	"fmt"
	"io"
	"testing"
	"time"

	"github.com/yask-engine/yask/internal/index"
	"github.com/yask-engine/yask/internal/score"
)

// e16QueryPath measures the warm top-k path twice over the same arena
// and buffer: once with NoCancel (the pre-cancellation hot path) and
// once under a live Cancel token bridged from a context whose deadline
// is far away — the realistic serving configuration, where every
// request carries a deadline that never fires. The difference is the
// whole cost of deadline propagation on the hot path: one amortized
// non-blocking channel poll per CheckInterval node visits. The token
// path's allocations are measured too; the row is gated at zero, so
// plumbing a context through the query path can never reintroduce a
// per-query allocation.
func e16QueryPath(env *Env, scale Scale) (noCancel, withCancel time.Duration, allocs float64) {
	qs := env.Queries(scale.queries(), 10, 2)
	a, err := env.Set.Snapshot()
	if err != nil {
		panic(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	cc := index.CancelOf(ctx)

	var buf []score.Result
	for _, q := range qs {
		buf = a.TopK(cc, a.Scorer(q), q.K, nil, buf[:0])
	}
	noCancel = timeIt(func() {
		for _, q := range qs {
			buf = a.TopK(index.NoCancel, a.Scorer(q), q.K, nil, buf[:0])
		}
	}) / time.Duration(len(qs))
	withCancel = timeIt(func() {
		for _, q := range qs {
			buf = a.TopK(cc, a.Scorer(q), q.K, nil, buf[:0])
		}
	}) / time.Duration(len(qs))
	allocs = testing.AllocsPerRun(10, func() {
		for _, q := range qs {
			buf = a.TopK(cc, a.Scorer(q), q.K, nil, buf[:0])
		}
	}) / float64(len(qs))
	return noCancel, withCancel, allocs
}

// RunE16CancelOverhead regenerates experiment E16: the cost of
// cooperative cancellation on the warm top-k path. A deadline that
// never fires must be (nearly) free — that is what makes it safe to
// put one on every request.
func RunE16CancelOverhead(w io.Writer, scale Scale) {
	env := NewEnv(scale.baseN())
	fmt.Fprintf(w, "E16 — deadline-check overhead on warm top-k (N=%d, %s scale)\n", scale.baseN(), scale)

	noCancel, withCancel, allocs := e16QueryPath(env, scale)
	tw := newTable(w)
	fmt.Fprintln(tw, "token\tµs/op\tallocs/op\t")
	fmt.Fprintf(tw, "NoCancel\t%s\t0\t\n", us(noCancel))
	fmt.Fprintf(tw, "ctx deadline (unexpired)\t%s\t%.0f\t\n", us(withCancel), allocs)
	tw.Flush()
	if noCancel > 0 {
		fmt.Fprintf(w, "overhead: %.2fx (amortized to one poll per %d node visits)\n",
			float64(withCancel)/float64(noCancel), index.CheckInterval)
	}
}

// addCancelMetrics emits the e16 rows of the machine-readable report:
// warm top-k latency with and without a live cancellation token, and
// the gated guarantee that the token path allocates nothing.
func addCancelMetrics(env *Env, scale Scale, add func(name string, value float64, unit string)) {
	noCancel, withCancel, allocs := e16QueryPath(env, scale)
	add("e16/topk/nocancel", float64(noCancel.Nanoseconds()), "ns/op")
	add("e16/topk/cancel", float64(withCancel.Nanoseconds()), "ns/op")
	add("e16/allocs/topk/cancel", allocs, "allocs/op")
}
