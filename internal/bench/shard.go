package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"github.com/yask-engine/yask/internal/core"
	"github.com/yask-engine/yask/internal/score"
)

// shardCounts is the shard sweep of E10 and the JSON report's
// per-shard-count rows.
var shardCounts = []int{1, 2, 4, 8}

// measureShard builds one engine at the given shard count over the
// env's dataset and measures warm single-query top-k latency and batch
// wall time over qs — the one measurement both the E10 table and the
// JSON baseline rows are derived from, so they can never desynchronize.
func measureShard(env *Env, qs []score.Query, shards int) (topk, batch time.Duration) {
	eng := core.NewEngine(env.DS.Objects, core.Options{Shards: shards, DisableCache: true})
	// Warm the per-shard scratch pools before timing.
	for _, q := range qs[:4] {
		if _, err := eng.TopK(q); err != nil {
			panic(err)
		}
	}
	topk = timeIt(func() {
		for _, q := range qs {
			if _, err := eng.TopK(q); err != nil {
				panic(err)
			}
		}
	}) / time.Duration(len(qs))
	batch = timeIt(func() {
		if _, err := eng.TopKBatch(qs, core.BatchOptions{}); err != nil {
			panic(err)
		}
	})
	return topk, batch
}

// RunE10Shard regenerates experiment E10: the sharded scatter-gather
// executor across shard counts, measured as single-query latency and
// batch throughput against the unsharded engine. Like E9, speedup is
// bounded by GOMAXPROCS — on a single-core host the table shows the
// scatter-gather and merge overhead instead of a win, which is itself a
// reproduction target (sharding must stay near-free when it cannot
// help); multi-core hosts read the per-shard-count scaling from it.
func RunE10Shard(w io.Writer, scale Scale) {
	env := NewEnv(scale.baseN())
	qs := env.Queries(scale.queries()*8, 10, 2)
	fmt.Fprintf(w, "E10 — sharded scatter-gather executor (N=%d, %d queries/batch, GOMAXPROCS=%d, %s scale)\n",
		scale.baseN(), len(qs), runtime.GOMAXPROCS(0), scale)
	tw := newTable(w)
	fmt.Fprintln(tw, "shards\ttop-k µs\tbatch ms\tqueries/s\tspeedup\t")

	var baseBatch time.Duration
	for _, shards := range shardCounts {
		topk, batch := measureShard(env, qs, shards)
		if shards == 1 {
			baseBatch = batch
		}
		fmt.Fprintf(tw, "%d\t%s\t%s\t%.0f\t%.1fx\t\n",
			shards, us(topk), ms(batch),
			float64(len(qs))/batch.Seconds(), float64(baseBatch)/float64(batch))
	}
	tw.Flush()
}

// addShardMetrics appends the per-shard-count rows of the JSON report:
// warm top-k latency and batch throughput for each shard count, so
// multi-core hosts can quantify the batch/shard speedup from the same
// machine-readable snapshot the perf trajectory is tracked with.
func addShardMetrics(env *Env, scale Scale, add func(name string, value float64, unit string)) {
	qs := env.Queries(scale.queries()*8, 10, 2)
	for _, shards := range shardCounts {
		topk, batch := measureShard(env, qs, shards)
		add(fmt.Sprintf("e10/topk/shards=%d", shards), float64(topk.Nanoseconds()), "ns/op")
		add(fmt.Sprintf("e10/batch/shards=%d", shards),
			float64(len(qs))/batch.Seconds(), "queries/s")
	}
}
