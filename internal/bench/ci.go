package bench

import (
	"encoding/json"
	"fmt"
	"os"
)

// LoadReport reads a machine-readable benchmark report (as written by
// `yaskbench -json`) from a file.
func LoadReport(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return Report{}, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	if rep.Schema != "yask-bench/v1" {
		return Report{}, fmt.Errorf("bench: %s has schema %q, want yask-bench/v1", path, rep.Schema)
	}
	return rep, nil
}

// CompareBaseline diffs cur against base for the CI bench-smoke gate.
//
// The hard rule protects the zero-allocation hot paths: every allocs/op
// row that is zero in the baseline must stay zero — a warm top-k that
// starts allocating is a regression no matter how fast it is. A row
// missing from the current report also hard-fails, so a metric rename
// forces a deliberate baseline update instead of silently dropping the
// guarantee.
//
// Everything else (latency, throughput) is reported as context in
// summary but never fails: shared CI runners are far too noisy to gate
// on wall-clock numbers.
func CompareBaseline(cur, base Report) (summary, regressions []string) {
	byName := make(map[string]Metric, len(cur.Metrics))
	for _, m := range cur.Metrics {
		byName[m.Name] = m
	}
	for _, b := range base.Metrics {
		c, ok := byName[b.Name]
		if b.Unit == "allocs/op" && b.Value == 0 {
			switch {
			case !ok:
				regressions = append(regressions,
					fmt.Sprintf("%s: row missing from current report (baseline guarantees 0 allocs/op)", b.Name))
			case c.Value != 0:
				regressions = append(regressions,
					fmt.Sprintf("%s: %.2f allocs/op, baseline guarantees 0", b.Name, c.Value))
			}
			continue
		}
		if ok && b.Value != 0 {
			summary = append(summary, fmt.Sprintf("%s: %.0f -> %.0f %s (%+.1f%%)",
				b.Name, b.Value, c.Value, b.Unit, (c.Value-b.Value)/b.Value*100))
		}
	}
	return summary, regressions
}
