package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"testing"
	"time"

	"github.com/yask-engine/yask/internal/core"
	"github.com/yask-engine/yask/internal/score"
)

// RunE9Batch regenerates experiment E9: throughput of the concurrent
// batch executor across worker counts, against the sequential loop
// baseline. Speedup is bounded by GOMAXPROCS — on a single-core host
// the table shows the executor's overhead instead of a win, which is
// itself a reproduction target (the pool must not cost more than a few
// percent when it cannot help).
func RunE9Batch(w io.Writer, scale Scale) {
	env := NewEnv(scale.baseN())
	qs := env.Queries(scale.queries()*8, 10, 2)
	fmt.Fprintf(w, "E9 — concurrent batch executor (N=%d, %d queries/batch, GOMAXPROCS=%d, %s scale)\n",
		scale.baseN(), len(qs), runtime.GOMAXPROCS(0), scale)
	tw := newTable(w)
	fmt.Fprintln(tw, "workers\tms/batch\tqueries/s\tspeedup\t")

	seq := timeIt(func() {
		for _, q := range qs {
			env.Set.TopK(q)
		}
	})
	fmt.Fprintf(tw, "loop\t%s\t%.0f\t1.0x\t\n", ms(seq), float64(len(qs))/seq.Seconds())

	for _, workers := range []int{1, 2, 4, 8} {
		var d time.Duration
		d = timeIt(func() {
			if _, err := env.Engine.TopKBatch(qs, core.BatchOptions{Workers: workers}); err != nil {
				panic(err)
			}
		})
		fmt.Fprintf(tw, "%d\t%s\t%.0f\t%.1fx\t\n",
			workers, ms(d), float64(len(qs))/d.Seconds(), float64(seq)/float64(d))
	}
	tw.Flush()
}

// Metric is one machine-readable measurement of the JSON report.
type Metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
}

// Report is the machine-readable benchmark snapshot `yaskbench -json`
// emits. Future PRs diff a fresh run against the checked-in
// BENCH_baseline.json to track the perf trajectory.
type Report struct {
	Schema     string `json:"schema"`
	Scale      string `json:"scale"`
	N          int    `json:"n"`
	GoMaxProcs int    `json:"gomaxprocs"`
	// Signatures records which signature configurations the run
	// measured ("both", "on", "off") — see yaskbench -signatures.
	Signatures string   `json:"signatures"`
	Metrics    []Metric `json:"metrics"`
}

// WriteJSONReport measures the hot-path suite and writes it as indented
// JSON.
func WriteJSONReport(w io.Writer, scale Scale) error {
	rep := MeasureReport(scale)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// MeasureReport measures the hot-path suite — warm top-k latency, node
// accesses, allocations per query, batch throughput, per-shard-count
// rows, the skewed-dataset balance sweep, and the signature on/off
// comparison — and returns the machine-readable report CI diffs
// against BENCH_baseline.json.
func MeasureReport(scale Scale) Report { return MeasureReportMode(scale, SigBoth) }

// MeasureReportMode is MeasureReport with the signature configuration
// pinned: SigBoth (the default and the CI setting) measures the main
// suite with signatures on and emits e12 rows for both paths; SigOn and
// SigOff restrict the whole run — including the e1 rows — to one path.
func MeasureReportMode(scale Scale, mode SigMode) Report {
	env := NewEnvSig(scale.baseN(), mode != SigOff)
	rep := Report{
		Schema:     "yask-bench/v1",
		Scale:      scale.String(),
		N:          scale.baseN(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Signatures: mode.String(),
	}
	add := func(name string, value float64, unit string) {
		rep.Metrics = append(rep.Metrics, Metric{Name: name, Value: value, Unit: unit})
	}

	for _, k := range []int{3, 10, 50} {
		qs := env.Queries(scale.queries(), k, 2)
		var buf []score.Result

		// Warm both scratch pools before timing.
		for _, q := range qs {
			buf, _ = env.Set.TopKAppend(q, buf[:0])
			buf, _ = env.Ir.TopKAppend(q, buf[:0])
		}

		env.Set.Stats().Reset()
		setTime := timeIt(func() {
			for _, q := range qs {
				buf, _ = env.Set.TopKAppend(q, buf[:0])
			}
		}) / time.Duration(len(qs))
		add(fmt.Sprintf("e1/topk/setr/k=%d", k), float64(setTime.Nanoseconds()), "ns/op")
		add(fmt.Sprintf("e1/nodes/setr/k=%d", k),
			float64(env.Set.Stats().NodeAccesses()/int64(len(qs))), "nodes/op")
		setAllocs := testing.AllocsPerRun(10, func() {
			for _, q := range qs {
				buf, _ = env.Set.TopKAppend(q, buf[:0])
			}
		}) / float64(len(qs))
		add(fmt.Sprintf("e1/allocs/setr/k=%d", k), setAllocs, "allocs/op")

		env.Ir.Stats().Reset()
		irTime := timeIt(func() {
			for _, q := range qs {
				buf, _ = env.Ir.TopKAppend(q, buf[:0])
			}
		}) / time.Duration(len(qs))
		add(fmt.Sprintf("e1/topk/ir/k=%d", k), float64(irTime.Nanoseconds()), "ns/op")
		add(fmt.Sprintf("e1/nodes/ir/k=%d", k),
			float64(env.Ir.Stats().NodeAccesses()/int64(len(qs))), "nodes/op")
		irAllocs := testing.AllocsPerRun(10, func() {
			for _, q := range qs {
				buf, _ = env.Ir.TopKAppend(q, buf[:0])
			}
		}) / float64(len(qs))
		add(fmt.Sprintf("e1/allocs/ir/k=%d", k), irAllocs, "allocs/op")
	}

	// Batch executor throughput.
	qs := env.Queries(scale.queries()*8, 10, 2)
	seq := timeIt(func() {
		for _, q := range qs {
			env.Set.TopK(q)
		}
	})
	add("e9/batch/loop", float64(len(qs))/seq.Seconds(), "queries/s")
	for _, workers := range []int{1, 8} {
		d := timeIt(func() {
			if _, err := env.Engine.TopKBatch(qs, core.BatchOptions{Workers: workers}); err != nil {
				panic(err)
			}
		})
		add(fmt.Sprintf("e9/batch/workers=%d", workers), float64(len(qs))/d.Seconds(), "queries/s")
		add(fmt.Sprintf("e9/speedup/workers=%d", workers), float64(seq)/float64(d), "x")
	}

	// Sharded executor: one row per shard count, so multi-core hosts
	// can finally quantify the batch/shard speedup from the snapshot.
	addShardMetrics(env, scale, add)

	// Skew-aware sharding: balance and latency per splitter strategy.
	addSkewMetrics(scale, add)

	// Keyword-signature pruning: on/off latency, exact set ops, hit
	// rate.
	addSignatureMetrics(env, scale, mode, add)

	// Durability: per-fsync-policy mutation cost, recovery replay, and
	// the zero-alloc warm query path of a durable engine.
	addDurabilityMetrics(scale, add)

	// Result cache: cache on/off latency over a Zipfian repeat stream,
	// hit rate, and the zero-alloc hit path.
	addCacheMetrics(scale, add)

	// Arena persistence: boot time rebuild vs mmap, and the zero-alloc
	// warm query path over the mapped columns.
	addArenaMetrics(scale, add)

	// Cooperative cancellation: warm top-k with and without a live
	// deadline token, and the zero-alloc guarantee of the token path.
	addCancelMetrics(env, scale, add)

	return rep
}
