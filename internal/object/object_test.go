package object

import (
	"testing"

	"github.com/yask-engine/yask/internal/geo"
	"github.com/yask-engine/yask/internal/vocab"
)

func TestNewCollectionSortsAndValidates(t *testing.T) {
	objs := []Object{
		{ID: 2, Loc: geo.Point{X: 2, Y: 2}},
		{ID: 0, Loc: geo.Point{X: 0, Y: 0}},
		{ID: 1, Loc: geo.Point{X: 1, Y: 1}},
	}
	c := NewCollection(objs)
	if c.Len() != 3 {
		t.Fatalf("Len = %d", c.Len())
	}
	for i := 0; i < 3; i++ {
		if got := c.Get(ID(i)).ID; got != ID(i) {
			t.Fatalf("Get(%d).ID = %d", i, got)
		}
	}
	// Input slice must not be mutated.
	if objs[0].ID != 2 {
		t.Fatal("NewCollection mutated input")
	}
}

func TestNewCollectionPanicsOnGaps(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("gapped IDs should panic")
		}
	}()
	NewCollection([]Object{{ID: 0}, {ID: 2}})
}

func TestNewCollectionPanicsOnDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate IDs should panic")
		}
	}()
	NewCollection([]Object{{ID: 0}, {ID: 0}})
}

func TestSpaceAndMaxDist(t *testing.T) {
	c := NewCollection([]Object{
		{ID: 0, Loc: geo.Point{X: 0, Y: 0}},
		{ID: 1, Loc: geo.Point{X: 3, Y: 4}},
	})
	if c.Space() != geo.NewRect(geo.Point{X: 0, Y: 0}, geo.Point{X: 3, Y: 4}) {
		t.Fatalf("Space = %v", c.Space())
	}
	if c.MaxDist() != 5 {
		t.Fatalf("MaxDist = %v", c.MaxDist())
	}
}

func TestEmptyCollection(t *testing.T) {
	c := NewCollection(nil)
	if c.Len() != 0 {
		t.Fatal("empty collection should have Len 0")
	}
	if c.MaxDist() != 1 {
		t.Fatalf("empty collection MaxDist = %v, want 1", c.MaxDist())
	}
}

func TestObjectString(t *testing.T) {
	o := Object{ID: 7, Name: "Grand Hotel", Loc: geo.Point{X: 1, Y: 2}, Doc: vocab.NewKeywordSet(3)}
	if o.String() == "" {
		t.Fatal("empty String()")
	}
	anon := Object{ID: 8, Loc: geo.Point{X: 1, Y: 2}}
	if anon.String() == "" {
		t.Fatal("empty String() for unnamed object")
	}
}

func TestObjectRect(t *testing.T) {
	o := Object{ID: 0, Loc: geo.Point{X: 5, Y: 6}}
	r := o.Rect()
	if r.Min != o.Loc || r.Max != o.Loc {
		t.Fatalf("Rect = %v", r)
	}
}
