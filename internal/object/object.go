// Package object defines the spatial-textual object model shared by every
// index and engine: an object o = (o.loc, o.doc) per Section 2.1 of the
// paper, carried together with a stable ID and an optional display name.
package object

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/yask-engine/yask/internal/geo"
	"github.com/yask-engine/yask/internal/vocab"
)

// ID is a stable object identifier. IDs are dense per dataset and double
// as the deterministic tie-breaker for equal ranking scores.
type ID uint32

// Object is one spatial web object: a point location plus a keyword set.
type Object struct {
	ID   ID
	Loc  geo.Point
	Doc  vocab.KeywordSet
	Name string
}

// Rect returns the degenerate MBR of the object's location.
func (o Object) Rect() geo.Rect { return geo.RectFromPoint(o.Loc) }

// String implements fmt.Stringer.
func (o Object) String() string {
	if o.Name != "" {
		return fmt.Sprintf("#%d %q @%s %s", o.ID, o.Name, o.Loc, o.Doc)
	}
	return fmt.Sprintf("#%d @%s %s", o.ID, o.Loc, o.Doc)
}

// Collection is an ID-addressable set of objects shared by every engine
// and index. The slice index of an object equals its ID, which keeps
// lookups O(1).
//
// A Collection is mutable through Append and Tombstone, but readers are
// never blocked: every read loads an immutable copy-on-write state
// through an atomic pointer, so Len/Get/All/Space/MaxDist are safe for
// concurrent use with a mutation in flight. Object data for an existing
// ID never changes; Append only grows the ID space, Tombstone only flips
// liveness. The ID space stays dense — tombstoned IDs are never reused —
// so historical IDs remain addressable (why-not questions may reference
// an object that was since removed).
type Collection struct {
	// mu serializes writers; readers go through state only.
	mu    sync.Mutex
	state atomic.Pointer[collState]
}

// collState is one immutable snapshot of the collection. Successive
// states may share backing arrays: Append writes only past the previous
// state's length, which no holder of the old state ever reads.
type collState struct {
	objs []Object
	// dead[id] marks tombstoned objects; nil means none.
	dead  []bool
	live  int
	space geo.Rect
}

// NewCollection builds a collection from objs. Object IDs must be dense
// 0..n-1 (any order); NewCollection sorts by ID and validates density so
// that later ID lookups are exact. It panics on duplicate or non-dense
// IDs, which always indicate a dataset construction bug.
func NewCollection(objs []Object) *Collection {
	sorted := make([]Object, len(objs))
	copy(sorted, objs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	for i, o := range sorted {
		if int(o.ID) != i {
			panic(fmt.Sprintf("object: IDs must be dense 0..n-1; position %d has ID %d", i, o.ID))
		}
	}
	st := &collState{objs: sorted, live: len(sorted)}
	if len(sorted) > 0 {
		r := sorted[0].Rect()
		for _, o := range sorted[1:] {
			r = r.UnionPoint(o.Loc)
		}
		st.space = r
	}
	c := &Collection{}
	c.state.Store(st)
	return c
}

// NewCollectionWithDead builds a collection from objs with the given
// tombstone flags — the checkpoint-restore constructor. Like
// NewCollection it validates dense IDs; dead may be nil (no tombstones)
// or must have len(objs) entries. Dead objects keep contributing to the
// bounding space (see Append), so a restored collection scores queries
// byte-identically to the one that was snapshotted.
func NewCollectionWithDead(objs []Object, dead []bool) *Collection {
	c := NewCollection(objs)
	if dead == nil {
		return c
	}
	if len(dead) != len(objs) {
		panic(fmt.Sprintf("object: %d tombstone flags for %d objects", len(dead), len(objs)))
	}
	live := 0
	anyDead := false
	for _, d := range dead {
		if d {
			anyDead = true
		} else {
			live++
		}
	}
	if !anyDead {
		return c
	}
	st := c.state.Load()
	deadCopy := make([]bool, len(dead))
	copy(deadCopy, dead)
	c.state.Store(&collState{objs: st.objs, dead: deadCopy, live: live, space: st.space})
	return c
}

// Len returns the size of the ID space: live plus tombstoned objects.
// Every ID in [0, Len) is addressable via Get.
//
//yask:hotpath
func (c *Collection) Len() int { return len(c.state.Load().objs) }

// LiveLen returns the number of live (non-tombstoned) objects.
func (c *Collection) LiveLen() int { return c.state.Load().live }

// Get returns the object with the given ID. It panics on out-of-range
// IDs. Tombstoned objects remain addressable; check Alive.
//
//yask:hotpath
func (c *Collection) Get(id ID) Object { return c.state.Load().objs[id] }

// Alive reports whether id is in range and not tombstoned.
//
//yask:hotpath
func (c *Collection) Alive(id ID) bool {
	st := c.state.Load()
	if int(id) >= len(st.objs) {
		return false
	}
	return st.dead == nil || !st.dead[id]
}

// All returns the backing slice, indexed by ID and including tombstoned
// objects (use Alive to filter). Callers must not mutate it.
func (c *Collection) All() []Object { return c.state.Load().objs }

// View is an immutable point-in-time view of the collection. Builders
// that derive several quantities from the data (sizes, liveness, and
// the objects themselves) must take one View instead of calling the
// Collection accessors repeatedly: each accessor loads the latest
// state, so two calls can straddle a concurrent Append and disagree
// about the ID space.
type View struct {
	objs []Object
	dead []bool
	live int
}

// View returns a consistent snapshot view of the collection.
func (c *Collection) View() View {
	st := c.state.Load()
	return View{objs: st.objs, dead: st.dead, live: st.live}
}

// All returns the view's objects, indexed by ID. Callers must not
// mutate the slice.
func (v View) All() []Object { return v.objs }

// Len returns the view's ID-space size.
func (v View) Len() int { return len(v.objs) }

// LiveLen returns the number of live objects in the view.
func (v View) LiveLen() int { return v.live }

// Alive reports whether id is in range and not tombstoned in the view.
func (v View) Alive(id ID) bool {
	if int(id) >= len(v.objs) {
		return false
	}
	return v.dead == nil || !v.dead[id]
}

// Append adds an object to the collection, assigning it the next dense
// ID (the object's own ID field is overwritten), and returns that ID.
// Safe for concurrent use with readers; concurrent writers serialize.
func (c *Collection) Append(o Object) ID {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.state.Load()
	id := ID(len(st.objs))
	o.ID = id
	next := &collState{
		objs: append(st.objs, o),
		live: st.live + 1,
	}
	if st.dead != nil {
		next.dead = append(st.dead, false)
	}
	if len(st.objs) == 0 {
		next.space = o.Rect()
	} else {
		// The space only grows: shrinking it on Tombstone would silently
		// change every score's normalization constant, so removed
		// locations keep contributing to the data-space diagonal.
		next.space = st.space.UnionPoint(o.Loc)
	}
	c.state.Store(next)
	return id
}

// Tombstone marks the object as removed and reports whether it was live.
// The ID stays addressable through Get so historical references (query
// logs, why-not questions) keep resolving.
func (c *Collection) Tombstone(id ID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.state.Load()
	if int(id) >= len(st.objs) || (st.dead != nil && st.dead[id]) {
		return false
	}
	// Copy the liveness bits: holders of the old state must keep seeing
	// the object alive.
	dead := make([]bool, len(st.objs))
	copy(dead, st.dead)
	dead[id] = true
	c.state.Store(&collState{objs: st.objs, dead: dead, live: st.live - 1, space: st.space})
	return true
}

// Space returns the MBR of all object locations ever added; the zero
// Rect for an empty collection. Its diagonal is the SDist normalization
// constant. Tombstoning never shrinks it (see Append).
func (c *Collection) Space() geo.Rect { return c.state.Load().space }

// MaxDist returns the spatial normalization constant: the largest
// possible distance between a query point inside the data space and any
// object, i.e. the diagonal of the data-space MBR. For degenerate spaces
// (≤1 distinct location) it returns 1 so that SDist is well defined.
func (c *Collection) MaxDist() float64 {
	d := c.state.Load().space.Diagonal()
	if d <= 0 {
		return 1
	}
	return d
}
