// Package object defines the spatial-textual object model shared by every
// index and engine: an object o = (o.loc, o.doc) per Section 2.1 of the
// paper, carried together with a stable ID and an optional display name.
package object

import (
	"fmt"
	"sort"

	"github.com/yask-engine/yask/internal/geo"
	"github.com/yask-engine/yask/internal/vocab"
)

// ID is a stable object identifier. IDs are dense per dataset and double
// as the deterministic tie-breaker for equal ranking scores.
type ID uint32

// Object is one spatial web object: a point location plus a keyword set.
type Object struct {
	ID   ID
	Loc  geo.Point
	Doc  vocab.KeywordSet
	Name string
}

// Rect returns the degenerate MBR of the object's location.
func (o Object) Rect() geo.Rect { return geo.RectFromPoint(o.Loc) }

// String implements fmt.Stringer.
func (o Object) String() string {
	if o.Name != "" {
		return fmt.Sprintf("#%d %q @%s %s", o.ID, o.Name, o.Loc, o.Doc)
	}
	return fmt.Sprintf("#%d @%s %s", o.ID, o.Loc, o.Doc)
}

// Collection is an immutable, ID-addressable set of objects. Engines and
// indexes share one Collection; the slice index of an object equals its
// ID, which keeps lookups O(1).
type Collection struct {
	objs  []Object
	space geo.Rect
}

// NewCollection builds a collection from objs. Object IDs must be dense
// 0..n-1 (any order); NewCollection sorts by ID and validates density so
// that later ID lookups are exact. It panics on duplicate or non-dense
// IDs, which always indicate a dataset construction bug.
func NewCollection(objs []Object) *Collection {
	sorted := make([]Object, len(objs))
	copy(sorted, objs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	for i, o := range sorted {
		if int(o.ID) != i {
			panic(fmt.Sprintf("object: IDs must be dense 0..n-1; position %d has ID %d", i, o.ID))
		}
	}
	c := &Collection{objs: sorted}
	if len(sorted) > 0 {
		r := sorted[0].Rect()
		for _, o := range sorted[1:] {
			r = r.UnionPoint(o.Loc)
		}
		c.space = r
	}
	return c
}

// Len returns the number of objects.
func (c *Collection) Len() int { return len(c.objs) }

// Get returns the object with the given ID. It panics on out-of-range
// IDs.
func (c *Collection) Get(id ID) Object { return c.objs[id] }

// All returns the backing slice. Callers must not mutate it.
func (c *Collection) All() []Object { return c.objs }

// Space returns the MBR of all object locations; the zero Rect for an
// empty collection. Its diagonal is the SDist normalization constant.
func (c *Collection) Space() geo.Rect { return c.space }

// MaxDist returns the spatial normalization constant: the largest
// possible distance between a query point inside the data space and any
// object, i.e. the diagonal of the data-space MBR. For degenerate spaces
// (≤1 distinct location) it returns 1 so that SDist is well defined.
func (c *Collection) MaxDist() float64 {
	d := c.space.Diagonal()
	if d <= 0 {
		return 1
	}
	return d
}
