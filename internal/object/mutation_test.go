package object

import (
	"sync"
	"testing"

	"github.com/yask-engine/yask/internal/geo"
	"github.com/yask-engine/yask/internal/vocab"
)

func mutTestCollection(n int) *Collection {
	objs := make([]Object, n)
	for i := range objs {
		objs[i] = Object{
			ID:  ID(i),
			Loc: geo.Point{X: float64(i), Y: float64(i % 7)},
			Doc: vocab.NewKeywordSet(vocab.Keyword(i % 5)),
		}
	}
	return NewCollection(objs)
}

func TestAppendAssignsDenseIDs(t *testing.T) {
	c := mutTestCollection(3)
	id := c.Append(Object{ID: 999, Loc: geo.Point{X: 10, Y: 10}, Doc: vocab.NewKeywordSet(1)})
	if id != 3 {
		t.Fatalf("Append assigned ID %d, want 3", id)
	}
	if c.Len() != 4 || c.LiveLen() != 4 {
		t.Fatalf("Len %d LiveLen %d after append", c.Len(), c.LiveLen())
	}
	if got := c.Get(3); got.ID != 3 || got.Loc.X != 10 {
		t.Fatalf("Get(3) = %+v", got)
	}
	// Space must have grown to include the new point.
	if !c.Space().ContainsRect(geo.RectFromPoint(geo.Point{X: 10, Y: 10})) {
		t.Fatalf("space %v does not cover the appended point", c.Space())
	}
}

func TestTombstoneSemantics(t *testing.T) {
	c := mutTestCollection(4)
	if !c.Tombstone(2) {
		t.Fatal("Tombstone(2) = false")
	}
	if c.Tombstone(2) {
		t.Fatal("double Tombstone(2) = true")
	}
	if c.Tombstone(99) {
		t.Fatal("Tombstone out of range = true")
	}
	if c.Alive(2) {
		t.Fatal("tombstoned object reports alive")
	}
	if !c.Alive(1) {
		t.Fatal("live object reports dead")
	}
	if c.Len() != 4 {
		t.Fatalf("Len shrank to %d; tombstoned IDs must stay addressable", c.Len())
	}
	if c.LiveLen() != 3 {
		t.Fatalf("LiveLen %d, want 3", c.LiveLen())
	}
	// The object stays addressable.
	if got := c.Get(2); got.ID != 2 {
		t.Fatalf("Get(2) after tombstone = %+v", got)
	}
	// IDs continue from the full length, never reusing the tombstone.
	if id := c.Append(Object{Loc: geo.Point{}, Doc: vocab.NewKeywordSet(0)}); id != 4 {
		t.Fatalf("Append after tombstone assigned %d, want 4", id)
	}
}

// TestConcurrentReadersDuringMutation drives readers over every accessor
// while a writer appends and tombstones; meaningful under -race.
func TestConcurrentReadersDuringMutation(t *testing.T) {
	c := mutTestCollection(64)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				n := c.Len()
				for i := 0; i < n; i++ {
					o := c.Get(ID(i))
					_ = c.Alive(o.ID)
				}
				_ = c.All()
				_ = c.MaxDist()
				_ = c.LiveLen()
			}
		}()
	}
	for i := 0; i < 500; i++ {
		id := c.Append(Object{Loc: geo.Point{X: float64(i), Y: 1}, Doc: vocab.NewKeywordSet(2)})
		if i%3 == 0 {
			c.Tombstone(id)
		}
	}
	close(stop)
	wg.Wait()
	if c.Len() != 64+500 {
		t.Fatalf("Len %d after storm", c.Len())
	}
}
