// Package pqueue provides a small generic binary-heap priority queue used
// by every best-first traversal in YASK (top-k search, kNN, rank
// computation). It exists because container/heap requires a boilerplate
// interface implementation at every call site and exposes the backing
// slice; this wrapper keeps call sites to Push/Pop/Peek.
package pqueue

// Queue is a priority queue over T ordered by the less function given at
// construction: Pop returns the element for which less ranks first.
type Queue[T any] struct {
	items []T
	less  func(a, b T) bool
}

// New returns an empty queue. less must define a strict weak ordering;
// the element that less orders first is popped first (so pass a
// "higher-priority-first" comparison for a max-heap behaviour).
func New[T any](less func(a, b T) bool) *Queue[T] {
	return &Queue[T]{less: less}
}

// NewWithCapacity returns an empty queue with pre-allocated storage.
func NewWithCapacity[T any](less func(a, b T) bool, capacity int) *Queue[T] {
	return &Queue[T]{items: make([]T, 0, capacity), less: less}
}

// Len returns the number of queued elements.
//
//yask:hotpath
func (q *Queue[T]) Len() int { return len(q.items) }

// Empty reports whether the queue has no elements.
//
//yask:hotpath
func (q *Queue[T]) Empty() bool { return len(q.items) == 0 }

// Push adds v to the queue.
//
//yask:hotpath
func (q *Queue[T]) Push(v T) {
	q.items = append(q.items, v) //yask:allocok(pooled heap storage; growth is amortized across queries)
	q.up(len(q.items) - 1)
}

// Pop removes and returns the highest-priority element. It panics on an
// empty queue.
//
//yask:hotpath
func (q *Queue[T]) Pop() T {
	if len(q.items) == 0 {
		panic("pqueue: Pop from empty queue")
	}
	top := q.items[0]
	last := len(q.items) - 1
	q.items[0] = q.items[last]
	var zero T
	q.items[last] = zero
	q.items = q.items[:last]
	if last > 0 {
		q.down(0)
	}
	return top
}

// Peek returns the highest-priority element without removing it. It
// panics on an empty queue.
//
//yask:hotpath
func (q *Queue[T]) Peek() T {
	if len(q.items) == 0 {
		panic("pqueue: Peek on empty queue")
	}
	return q.items[0]
}

// Reset removes all elements but keeps the allocated storage.
//
//yask:hotpath
func (q *Queue[T]) Reset() {
	var zero T
	for i := range q.items {
		q.items[i] = zero
	}
	q.items = q.items[:0]
}

//yask:hotpath
func (q *Queue[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(q.items[i], q.items[parent]) {
			return
		}
		q.items[i], q.items[parent] = q.items[parent], q.items[i]
		i = parent
	}
}

//yask:hotpath
func (q *Queue[T]) down(i int) {
	n := len(q.items)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		best := left
		if right := left + 1; right < n && q.less(q.items[right], q.items[left]) {
			best = right
		}
		if !q.less(q.items[best], q.items[i]) {
			return
		}
		q.items[i], q.items[best] = q.items[best], q.items[i]
		i = best
	}
}
