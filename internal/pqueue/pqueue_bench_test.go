package pqueue

import (
	"math/rand"
	"testing"
)

// TestResetKeepsStorage proves the reuse contract the traversal scratch
// pools depend on: after Reset, refilling to the previous size performs
// zero heap allocations, across many reuse cycles.
func TestResetKeepsStorage(t *testing.T) {
	const n = 1024
	q := New(func(a, b int) bool { return a < b })
	rng := rand.New(rand.NewSource(1))
	fill := func() {
		for i := 0; i < n; i++ {
			q.Push(rng.Intn(1 << 20))
		}
	}
	fill()
	q.Reset()
	if q.Len() != 0 {
		t.Fatalf("Len %d after Reset", q.Len())
	}
	allocs := testing.AllocsPerRun(50, func() {
		fill()
		q.Reset()
	})
	if allocs != 0 {
		t.Fatalf("refilling a Reset queue allocated %.1f times per cycle, want 0", allocs)
	}
}

// TestResetZeroesItems checks Reset drops references so pooled queues
// don't pin freed elements (important for pointer-carrying scratch).
func TestResetZeroesItems(t *testing.T) {
	q := New(func(a, b *int) bool { return *a < *b })
	v := 7
	q.Push(&v)
	q.Reset()
	q.Push(&v) // reuses slot 0 of the kept storage
	if got := q.Pop(); got != &v {
		t.Fatal("queue corrupted after Reset")
	}
}

func benchPushPop(b *testing.B, n int) {
	q := NewWithCapacity(func(a, b int) bool { return a < b }, n)
	rng := rand.New(rand.NewSource(1))
	vals := make([]int, n)
	for i := range vals {
		vals[i] = rng.Intn(1 << 20)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, v := range vals {
			q.Push(v)
		}
		for q.Len() > 0 {
			q.Pop()
		}
	}
}

func BenchmarkPushPop64(b *testing.B)   { benchPushPop(b, 64) }
func BenchmarkPushPop1024(b *testing.B) { benchPushPop(b, 1024) }

// BenchmarkReuseWithReset measures the scratch-pool usage pattern: one
// queue filled, drained halfway, and Reset per cycle. Steady state must
// report 0 allocs/op.
func BenchmarkReuseWithReset(b *testing.B) {
	q := New(func(a, b int) bool { return a < b })
	rng := rand.New(rand.NewSource(1))
	vals := make([]int, 512)
	for i := range vals {
		vals[i] = rng.Intn(1 << 20)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, v := range vals {
			q.Push(v)
		}
		for j := 0; j < len(vals)/2; j++ {
			q.Pop()
		}
		q.Reset()
	}
}

// BenchmarkFreshQueuePerOp is the anti-pattern the pools remove: a new
// queue per cycle, growing from empty every time.
func BenchmarkFreshQueuePerOp(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]int, 512)
	for i := range vals {
		vals[i] = rng.Intn(1 << 20)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := New(func(a, b int) bool { return a < b })
		for _, v := range vals {
			q.Push(v)
		}
		for j := 0; j < len(vals)/2; j++ {
			q.Pop()
		}
	}
}
