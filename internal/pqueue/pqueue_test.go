package pqueue

import (
	"math/rand"
	"sort"
	"testing"
)

func TestPushPopOrdering(t *testing.T) {
	q := New(func(a, b int) bool { return a < b })
	for _, v := range []int{5, 1, 4, 2, 3} {
		q.Push(v)
	}
	for want := 1; want <= 5; want++ {
		if got := q.Pop(); got != want {
			t.Fatalf("Pop = %d, want %d", got, want)
		}
	}
	if !q.Empty() {
		t.Fatal("queue should be empty")
	}
}

func TestMaxHeapViaLess(t *testing.T) {
	q := New(func(a, b float64) bool { return a > b })
	for _, v := range []float64{0.3, 0.9, 0.1} {
		q.Push(v)
	}
	if got := q.Pop(); got != 0.9 {
		t.Fatalf("max-first Pop = %v", got)
	}
}

func TestPeekDoesNotRemove(t *testing.T) {
	q := New(func(a, b int) bool { return a < b })
	q.Push(2)
	q.Push(1)
	if q.Peek() != 1 || q.Len() != 2 {
		t.Fatalf("Peek = %d, Len = %d", q.Peek(), q.Len())
	}
}

func TestPopEmptyPanics(t *testing.T) {
	q := New(func(a, b int) bool { return a < b })
	defer func() {
		if recover() == nil {
			t.Fatal("Pop on empty queue should panic")
		}
	}()
	q.Pop()
}

func TestPeekEmptyPanics(t *testing.T) {
	q := New(func(a, b int) bool { return a < b })
	defer func() {
		if recover() == nil {
			t.Fatal("Peek on empty queue should panic")
		}
	}()
	q.Peek()
}

func TestReset(t *testing.T) {
	q := NewWithCapacity(func(a, b int) bool { return a < b }, 8)
	q.Push(1)
	q.Push(2)
	q.Reset()
	if !q.Empty() {
		t.Fatal("Reset should empty the queue")
	}
	q.Push(9)
	if q.Pop() != 9 {
		t.Fatal("queue unusable after Reset")
	}
}

func TestHeapSortRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(200)
		in := make([]int, n)
		for i := range in {
			in[i] = rng.Intn(1000)
		}
		q := New(func(a, b int) bool { return a < b })
		for _, v := range in {
			q.Push(v)
		}
		want := append([]int(nil), in...)
		sort.Ints(want)
		for i, w := range want {
			if got := q.Pop(); got != w {
				t.Fatalf("trial %d pos %d: Pop = %d, want %d", trial, i, got, w)
			}
		}
	}
}

func TestInterleavedPushPop(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	q := New(func(a, b int) bool { return a < b })
	oracle := []int{}
	for op := 0; op < 2000; op++ {
		if q.Len() == 0 || rng.Intn(2) == 0 {
			v := rng.Intn(100)
			q.Push(v)
			oracle = append(oracle, v)
			sort.Ints(oracle)
		} else {
			got := q.Pop()
			if got != oracle[0] {
				t.Fatalf("op %d: Pop = %d, want %d", op, got, oracle[0])
			}
			oracle = oracle[1:]
		}
	}
}

func TestStructElements(t *testing.T) {
	type entry struct {
		key  float64
		name string
	}
	q := New(func(a, b entry) bool { return a.key < b.key })
	q.Push(entry{2.5, "b"})
	q.Push(entry{1.5, "a"})
	q.Push(entry{3.5, "c"})
	if got := q.Pop().name; got != "a" {
		t.Fatalf("Pop name = %q", got)
	}
}
