// Package qcache is the epoch-keyed result cache: a sharded, bounded
// LRU mapping (epoch identity, canonical query key) to computed
// answers. Every answer the engine produces is a pure function of the
// published snapshot it was computed against, and each published state
// carries a process-wide unique epoch (rtree.NextEpoch), so an entry
// keyed by the epoch it was computed at can never go stale: a refresh,
// rebalance, or recovery publishes a new epoch and silently orphans the
// old entries. Invalidation is free — eviction is the only policy.
//
// The canonical query key is the query itself: keyword sets are interned
// in sorted, deduplicated form at the API boundary (vocab.InternSet via
// yask.buildQuery), weights and similarity are defaulted in exactly one
// place, so semantically identical requests compare equal here. Hashes
// mix every scoring-relevant field; hits verify full equality, so a
// hash collision degrades to a miss, never a wrong answer.
//
// The top-k hit path is allocation-free: cached results are immutable
// slices copied into the caller-owned destination buffer, in the
// TopKAppend shape the index arenas use.
//
// internal/core consults the cache on TopK/TopKAppend, Rank, Explain,
// AdjustPreference, and TopKBatch, and purges orphaned epochs
// (PurgeBelow) after every publish; equivalence property tests in
// internal/core pin cached == uncached across mutations, refreshes,
// rebalances, and crash recovery. docs/ARCHITECTURE.md places the
// cache in the request path.
package qcache
