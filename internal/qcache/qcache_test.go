package qcache

import (
	"fmt"
	"sync"
	"testing"

	"github.com/yask-engine/yask/internal/geo"
	"github.com/yask-engine/yask/internal/object"
	"github.com/yask-engine/yask/internal/score"
	"github.com/yask-engine/yask/internal/vocab"
)

func testQuery(x float64, kws ...vocab.Keyword) score.Query {
	doc := make(vocab.KeywordSet, len(kws))
	copy(doc, kws)
	return score.Query{
		Loc: geo.Point{X: x, Y: -x},
		Doc: doc,
		K:   3,
		W:   score.DefaultWeights,
	}
}

func testResults(n int) []score.Result {
	rs := make([]score.Result, n)
	for i := range rs {
		rs[i] = score.Result{
			Obj:   object.Object{ID: object.ID(i), Loc: geo.Point{X: float64(i)}},
			Score: 1 - float64(i)/10,
		}
	}
	return rs
}

func TestTopKHitMissRoundTrip(t *testing.T) {
	c := New(0, 0)
	q := testQuery(1, 5, 9, 12)
	if _, ok := c.GetTopK(7, q, nil); ok {
		t.Fatal("hit on empty cache")
	}
	want := testResults(3)
	c.PutTopK(7, q, want)

	got, ok := c.GetTopK(7, q, nil)
	if !ok {
		t.Fatal("miss after put")
	}
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Score != want[i].Score || got[i].Obj.ID != want[i].Obj.ID {
			t.Fatalf("result %d = %+v, want %+v", i, got[i], want[i])
		}
	}

	// A different epoch is a different key: the old answer is orphaned,
	// never served.
	if _, ok := c.GetTopK(8, q, nil); ok {
		t.Fatal("hit across epochs")
	}
	// So is any differing query field.
	q2 := q
	q2.K = 4
	if _, ok := c.GetTopK(7, q2, nil); ok {
		t.Fatal("hit across k")
	}

	st := c.Stats()
	if st.Hits != 1 || st.Misses != 3 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 3 misses / 1 entry", st)
	}
	if got := st.HitRate(); got != 0.25 {
		t.Fatalf("hit rate = %v, want 0.25", got)
	}
}

func TestGetAppendsToCallerBuffer(t *testing.T) {
	c := New(0, 0)
	q := testQuery(2, 3)
	c.PutTopK(1, q, testResults(2))

	dst := make([]score.Result, 0, 8)
	dst = append(dst, score.Result{Score: 42})
	got, ok := c.GetTopK(1, q, dst)
	if !ok {
		t.Fatal("miss")
	}
	if len(got) != 3 || got[0].Score != 42 {
		t.Fatalf("append did not preserve caller prefix: %+v", got)
	}
	if &got[0] != &dst[0] {
		t.Fatal("hit reallocated the caller's buffer despite capacity")
	}
}

func TestHitPathDoesNotAllocate(t *testing.T) {
	c := New(0, 0)
	q := testQuery(3, 1, 2, 3)
	c.PutTopK(5, q, testResults(3))

	dst := make([]score.Result, 0, 8)
	allocs := testing.AllocsPerRun(100, func() {
		var ok bool
		dst, ok = c.GetTopK(5, q, dst[:0])
		if !ok {
			t.Fatal("miss on hit path")
		}
	})
	if allocs != 0 {
		t.Fatalf("cache hit allocates %v times per op, want 0", allocs)
	}
}

func TestLRUEvictionByEntries(t *testing.T) {
	// numShards entries per shard at most; with maxEntries = numShards
	// each shard holds one entry, so two queries landing in the same
	// shard evict the older.
	c := New(numShards, 0)
	const n = 6 * numShards
	for i := 0; i < n; i++ {
		c.PutTopK(1, testQuery(float64(i), vocab.Keyword(i)), testResults(1))
	}
	st := c.Stats()
	if st.Entries > numShards {
		t.Fatalf("cache holds %d entries, bound %d", st.Entries, numShards)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions recorded despite overflow")
	}
	if st.Entries+int(st.Evictions) != n {
		t.Fatalf("entries %d + evictions %d != inserts %d", st.Entries, st.Evictions, n)
	}
}

func TestLRUEvictionByBytes(t *testing.T) {
	// Per-shard byte budget fits ~2 small entries; filling one shard
	// far past that must evict down to the budget, never grow past it.
	c := New(1<<20, numShards*1024)
	for i := 0; i < 64; i++ {
		c.PutTopK(1, testQuery(float64(i), vocab.Keyword(i)), testResults(2))
	}
	st := c.Stats()
	if st.Bytes > numShards*1024 {
		t.Fatalf("cache holds %d bytes, bound %d", st.Bytes, numShards*1024)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions recorded despite byte overflow")
	}
}

func TestLRUKeepsRecentlyUsed(t *testing.T) {
	c := New(2*numShards, 0) // two entries per shard
	hot := testQuery(100, 1)
	c.PutTopK(1, hot, testResults(1))
	// Repeatedly touch hot, then insert other entries; inserts landing
	// in hot's shard evict its least-recently-used entry, which the
	// touch guarantees is never hot.
	for i := 0; i < 6*numShards; i++ {
		if _, ok := c.GetTopK(1, hot, nil); !ok {
			t.Fatalf("hot entry evicted after %d inserts despite recent use", i)
		}
		c.PutTopK(1, testQuery(float64(i), vocab.Keyword(i+2)), testResults(1))
	}
}

func TestPurgeBelowDropsOrphanedEpochs(t *testing.T) {
	c := New(0, 0)
	for epoch := uint64(1); epoch <= 3; epoch++ {
		for i := 0; i < 4; i++ {
			c.PutTopK(epoch, testQuery(float64(i), vocab.Keyword(i)), testResults(1))
		}
	}
	c.PurgeBelow(3)
	st := c.Stats()
	if st.Entries != 4 {
		t.Fatalf("entries after purge = %d, want 4", st.Entries)
	}
	if st.OrphanedEpochs != 2 {
		t.Fatalf("orphaned epochs = %d, want 2", st.OrphanedEpochs)
	}
	// The surviving epoch still serves.
	if _, ok := c.GetTopK(3, testQuery(0, 0), nil); !ok {
		t.Fatal("current-epoch entry purged")
	}
	// Purging everything empties the cache and frees the bytes.
	c.PurgeBelow(99)
	st = c.Stats()
	if st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("after full purge: %+v, want empty", st)
	}
}

func TestValueRoundTripWithExtra(t *testing.T) {
	c := New(0, 0)
	q := testQuery(1, 7)
	c.PutValue(2, KindRank, q, []uint64{17}, 42)

	v, ok := c.GetValue(2, KindRank, q, []uint64{17})
	if !ok || v.(int) != 42 {
		t.Fatalf("GetValue = %v, %v; want 42, true", v, ok)
	}
	// The extra words discriminate: same query, different object.
	if _, ok := c.GetValue(2, KindRank, q, []uint64{18}); ok {
		t.Fatal("hit across extra discriminator")
	}
	// So does the kind.
	if _, ok := c.GetValue(2, KindExplain, q, []uint64{17}); ok {
		t.Fatal("hit across kinds")
	}
	// The caller's extra slice is copied, not aliased.
	extra := []uint64{33}
	c.PutValue(2, KindRank, q, extra, "answer")
	extra[0] = 99
	if _, ok := c.GetValue(2, KindRank, q, []uint64{33}); !ok {
		t.Fatal("mutating the caller's extra slice corrupted the stored key")
	}
}

func TestPutCopiesResults(t *testing.T) {
	c := New(0, 0)
	q := testQuery(4, 2)
	rs := testResults(2)
	c.PutTopK(1, q, rs)
	rs[0].Score = -1 // caller scribbles on its buffer after Put
	got, ok := c.GetTopK(1, q, nil)
	if !ok || got[0].Score == -1 {
		t.Fatalf("stored results alias the caller's buffer: %+v", got)
	}
}

func TestNilCacheIsDisabled(t *testing.T) {
	var c *Cache
	q := testQuery(1, 1)
	c.PutTopK(1, q, testResults(1))
	if _, ok := c.GetTopK(1, q, nil); ok {
		t.Fatal("nil cache hit")
	}
	if _, ok := c.GetValue(1, KindRank, q, nil); ok {
		t.Fatal("nil cache value hit")
	}
	c.PurgeBelow(5)
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("nil cache stats = %+v, want zero", st)
	}
}

func TestConcurrentStorm(t *testing.T) {
	c := New(256, 1<<20)
	const (
		workers = 8
		iters   = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			dst := make([]score.Result, 0, 8)
			for i := 0; i < iters; i++ {
				epoch := uint64(i / 500)
				q := testQuery(float64(i%64), vocab.Keyword(w), vocab.Keyword(i%16))
				var ok bool
				dst, ok = c.GetTopK(epoch, q, dst[:0])
				if !ok {
					c.PutTopK(epoch, q, testResults(2))
				}
				if i%97 == 0 {
					c.PurgeBelow(epoch)
				}
				if i%131 == 0 {
					c.Stats()
				}
			}
		}(w)
	}
	wg.Wait()
	// Sanity: the cache is still coherent after the storm.
	st := c.Stats()
	if st.Entries < 0 || st.Bytes < 0 {
		t.Fatalf("corrupted stats after storm: %+v", st)
	}
}

func TestHashCollisionDegradesToMiss(t *testing.T) {
	// Force a synthetic collision by inserting an entry and then
	// looking up a different query whose hash we overwrite to match.
	// The public API can't express this, so exercise the internal
	// lookup path: a mismatched entry under the right hash is a miss.
	c := New(0, 0)
	q1 := testQuery(1, 1)
	q2 := testQuery(2, 2)
	h := hashQuery(1, KindTopK, q1, nil)
	s := c.shardFor(h)
	s.mu.Lock()
	s.m[h] = &entry{epoch: 1, kind: KindTopK, hash: h, q: q2, results: testResults(1)}
	s.moveToFront(s.m[h])
	s.mu.Unlock()
	if _, ok := c.GetTopK(1, q1, nil); ok {
		t.Fatal("colliding entry served a wrong answer")
	}
}

func TestStatsStringerSmoke(t *testing.T) {
	// Guard the exported fields the server marshals.
	st := Stats{Entries: 1, Bytes: 2, Hits: 3, Misses: 1, Evictions: 4, OrphanedEpochs: 5}
	if got := st.HitRate(); got != 0.75 {
		t.Fatalf("hit rate = %v, want 0.75", got)
	}
	if s := fmt.Sprintf("%+v", st); s == "" {
		t.Fatal("unprintable stats")
	}
}
