// The cache proper: sharded LRU, canonical keys, allocation-free hit
// path. Package overview in doc.go.

package qcache

import (
	"math"
	"sync"
	"sync/atomic"
	"unsafe"

	"github.com/yask-engine/yask/internal/score"
)

// Kind discriminates what operation an entry answers; it is part of the
// key so a rank and a top-k for the same query never collide.
type Kind uint8

const (
	// KindTopK entries hold a top-k result list.
	KindTopK Kind = iota
	// KindRank entries hold a 1-based rank.
	KindRank
	// KindExplain entries hold a why-not explanation set.
	KindExplain
	// KindPreference entries hold a preference-adjustment answer.
	KindPreference
)

const (
	// numShards spreads lock contention; power of two so the shard pick
	// is a mask.
	numShards = 16

	// DefaultEntries and DefaultBytes are the bounds used when the
	// caller passes zero: generous enough for repeat-heavy traffic,
	// small enough to be invisible next to the index arenas.
	DefaultEntries = 4096
	DefaultBytes   = 64 << 20

	// entryOverheadBytes approximates the fixed cost of one entry (the
	// entry struct, its map slot, and LRU links) for the byte bound.
	entryOverheadBytes = 192
	// payloadBytes is the flat byte charge for an opaque non-top-k
	// payload; the bound is an eviction heuristic, not an accountant.
	payloadBytes = 512
)

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// entry is one cached answer, a member of exactly one shard's map and
// LRU list. All fields are immutable after insertion except the links.
type entry struct {
	epoch uint64
	kind  Kind
	hash  uint64

	// The full canonical query plus any operation-specific discriminator
	// (object IDs, option bits), kept for collision-safe verification.
	q     score.Query
	extra []uint64

	// results is the top-k payload (KindTopK); value carries every other
	// kind's answer, boxed once at insertion so hits never allocate.
	results []score.Result
	value   any

	bytes      int64
	prev, next *entry
}

// shard is one lock-striped segment: a hash map over entries plus an
// intrusive LRU list (head = most recent).
type shard struct {
	mu         sync.Mutex
	m          map[uint64]*entry
	head, tail *entry
	bytes      int64
	maxEntries int
	maxBytes   int64
}

// Cache is the sharded, bounded, epoch-keyed LRU. The zero value is not
// usable; construct with New. A nil *Cache is a valid disabled cache:
// every lookup misses and every insert is dropped, so callers wire it
// through unconditionally.
type Cache struct {
	shards [numShards]shard

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	// orphaned counts epochs that still held entries when a purge
	// dropped them — how often published state turned over with cached
	// answers outstanding.
	orphaned atomic.Int64
}

// New returns a cache bounded by maxEntries and maxBytes (approximate,
// split across shards). Zero selects the defaults; negative bounds are
// clamped to the defaults too — callers disable caching by using a nil
// *Cache, not by a zero-sized one.
func New(maxEntries int, maxBytes int64) *Cache {
	if maxEntries <= 0 {
		maxEntries = DefaultEntries
	}
	if maxBytes <= 0 {
		maxBytes = DefaultBytes
	}
	c := &Cache{}
	perEntries := (maxEntries + numShards - 1) / numShards
	perBytes := (maxBytes + numShards - 1) / numShards
	for i := range c.shards {
		c.shards[i] = shard{
			m:          make(map[uint64]*entry),
			maxEntries: perEntries,
			maxBytes:   perBytes,
		}
	}
	return c
}

// hashQuery mixes every scoring-relevant query field, the epoch, the
// kind, and the extra words into one FNV-1a style hash. Float fields
// hash by bit pattern; queries are validated finite before they reach
// the engine, so NaN never gets here.
//
//yask:hotpath
func hashQuery(epoch uint64, kind Kind, q score.Query, extra []uint64) uint64 {
	h := uint64(fnvOffset)
	h = mix(h, epoch)
	h = mix(h, uint64(kind))
	h = mix(h, floatBits(q.Loc.X))
	h = mix(h, floatBits(q.Loc.Y))
	h = mix(h, uint64(q.K))
	h = mix(h, floatBits(q.W.Ws))
	h = mix(h, floatBits(q.W.Wt))
	h = mix(h, uint64(q.Sim))
	for _, kw := range q.Doc {
		h = mix(h, uint64(kw))
	}
	for _, x := range extra {
		h = mix(h, x)
	}
	return h
}

//yask:hotpath
func mix(h, x uint64) uint64 {
	h ^= x
	h *= fnvPrime
	return h
}

//yask:hotpath
func floatBits(f float64) uint64 { return math.Float64bits(f) }

// matches reports whether the stored entry answers exactly this
// request.
//
//yask:hotpath
func (e *entry) matches(epoch uint64, kind Kind, q score.Query, extra []uint64) bool {
	if e.epoch != epoch || e.kind != kind {
		return false
	}
	if !EqualQueries(e.q, q) || len(e.extra) != len(extra) {
		return false
	}
	for i, x := range e.extra {
		if x != extra[i] {
			return false
		}
	}
	return true
}

// EqualQueries reports whether two canonical queries are the same cache
// key: every scoring-relevant field identical, float fields compared by
// bit pattern to match the hash, keyword sets elementwise (canonical
// sets are sorted and deduplicated, so elementwise equality is set
// equality). The batch executor uses it to dedupe identical queries
// within one scatter.
//
//yask:hotpath
func EqualQueries(a, b score.Query) bool {
	if floatBits(a.Loc.X) != floatBits(b.Loc.X) || floatBits(a.Loc.Y) != floatBits(b.Loc.Y) {
		return false
	}
	if a.K != b.K || a.Sim != b.Sim {
		return false
	}
	if floatBits(a.W.Ws) != floatBits(b.W.Ws) || floatBits(a.W.Wt) != floatBits(b.W.Wt) {
		return false
	}
	if len(a.Doc) != len(b.Doc) {
		return false
	}
	for i, kw := range a.Doc {
		if kw != b.Doc[i] {
			return false
		}
	}
	return true
}

// HashQuery returns the epoch- and kind-free hash of a canonical query
// — the grouping key the batch executor dedupes with (exact equality is
// still checked via EqualQueries).
func HashQuery(q score.Query) uint64 {
	return hashQuery(0, KindTopK, q, nil)
}

//yask:hotpath
func (c *Cache) shardFor(hash uint64) *shard {
	return &c.shards[hash&(numShards-1)]
}

// moveToFront makes e the shard's most recently used entry. Caller
// holds the shard lock.
//
//yask:hotpath
func (s *shard) moveToFront(e *entry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

//yask:hotpath
func (s *shard) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	}
	if s.head == e {
		s.head = e.next
	}
	if s.tail == e {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// lookup is the shared hit path: find, verify, touch. Caller holds the
// shard lock.
//
//yask:hotpath
func (s *shard) lookup(hash, epoch uint64, kind Kind, q score.Query, extra []uint64) *entry {
	e := s.m[hash]
	if e == nil || !e.matches(epoch, kind, q, extra) {
		return nil
	}
	s.moveToFront(e)
	return e
}

// GetTopK appends the cached top-k results for (epoch, q) to dst and
// reports a hit. The copy lands in the caller-owned buffer — the warm
// path reuses its capacity, so a hit performs no allocation.
//
//yask:hotpath
func (c *Cache) GetTopK(epoch uint64, q score.Query, dst []score.Result) ([]score.Result, bool) {
	if c == nil {
		return dst, false
	}
	hash := hashQuery(epoch, KindTopK, q, nil)
	s := c.shardFor(hash)
	s.mu.Lock() //yask:allocok(mutex lock does not allocate)
	e := s.lookup(hash, epoch, KindTopK, q, nil)
	if e == nil {
		s.mu.Unlock() //yask:allocok(mutex unlock does not allocate)
		c.misses.Add(1)
		return dst, false
	}
	dst = append(dst, e.results...) //yask:allocok(caller-owned result buffer; the warm path reuses its capacity)
	s.mu.Unlock()                   //yask:allocok(mutex unlock does not allocate)
	c.hits.Add(1)
	return dst, true
}

// PutTopK stores a top-k result list for (epoch, q). The results slice
// is copied, so the caller keeps ownership of its buffer.
func (c *Cache) PutTopK(epoch uint64, q score.Query, results []score.Result) {
	if c == nil {
		return
	}
	stored := make([]score.Result, len(results))
	copy(stored, results)
	bytes := int64(entryOverheadBytes) + queryBytes(q)
	for _, r := range results {
		bytes += int64(unsafe.Sizeof(r)) + int64(4*len(r.Obj.Doc)) + int64(len(r.Obj.Name))
	}
	c.put(&entry{
		epoch:   epoch,
		kind:    KindTopK,
		hash:    hashQuery(epoch, KindTopK, q, nil),
		q:       q,
		results: stored,
		bytes:   bytes,
	})
}

// GetValue returns the cached opaque answer for (epoch, kind, q, extra)
// — ranks, explanations, refinement answers. The value was boxed once
// at insertion, so hits do not allocate; extra is an operation-specific
// discriminator (object IDs, option bits) compared exactly.
func (c *Cache) GetValue(epoch uint64, kind Kind, q score.Query, extra []uint64) (any, bool) {
	if c == nil {
		return nil, false
	}
	hash := hashQuery(epoch, kind, q, extra)
	s := c.shardFor(hash)
	s.mu.Lock()
	e := s.lookup(hash, epoch, kind, q, extra)
	s.mu.Unlock()
	if e == nil {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return e.value, true
}

// PutValue stores an opaque answer for (epoch, kind, q, extra). The
// extra slice is copied; the value must be immutable from here on (the
// engine stores freshly computed answers it has already handed out by
// value, or that callers treat as read-only).
func (c *Cache) PutValue(epoch uint64, kind Kind, q score.Query, extra []uint64, value any) {
	if c == nil {
		return
	}
	var storedExtra []uint64
	if len(extra) > 0 {
		storedExtra = make([]uint64, len(extra))
		copy(storedExtra, extra)
	}
	c.put(&entry{
		epoch: epoch,
		kind:  kind,
		hash:  hashQuery(epoch, kind, q, extra),
		q:     q,
		extra: storedExtra,
		value: value,
		bytes: int64(entryOverheadBytes) + queryBytes(q) + int64(8*len(extra)) + payloadBytes,
	})
}

// queryBytes approximates the retained size of the key's query.
func queryBytes(q score.Query) int64 {
	return int64(unsafe.Sizeof(q)) + int64(4*len(q.Doc))
}

// put inserts (or replaces) the entry and evicts from the LRU tail
// until the shard is back within its bounds. Entries larger than a
// whole shard's byte budget are dropped rather than cached.
func (c *Cache) put(e *entry) {
	s := c.shardFor(e.hash)
	if e.bytes > s.maxBytes {
		return
	}
	s.mu.Lock()
	if old := s.m[e.hash]; old != nil {
		s.unlink(old)
		s.bytes -= old.bytes
		delete(s.m, old.hash)
	}
	s.m[e.hash] = e
	s.bytes += e.bytes
	s.moveToFront(e)
	evicted := int64(0)
	for (len(s.m) > s.maxEntries || s.bytes > s.maxBytes) && s.tail != nil && s.tail != e {
		victim := s.tail
		s.unlink(victim)
		s.bytes -= victim.bytes
		delete(s.m, victim.hash)
		evicted++
	}
	s.mu.Unlock()
	if evicted > 0 {
		c.evictions.Add(evicted)
	}
}

// PurgeBelow drops every entry whose epoch is below the given one —
// the off-query-path reclamation the engine runs after publishing a new
// epoch. Entries keyed to orphaned epochs are already unreachable by
// construction (no lookup carries an old epoch); purging just returns
// their memory early instead of waiting for LRU pressure.
func (c *Cache) PurgeBelow(epoch uint64) {
	if c == nil {
		return
	}
	seen := make(map[uint64]bool)
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for e := s.head; e != nil; {
			next := e.next
			if e.epoch < epoch {
				s.unlink(e)
				s.bytes -= e.bytes
				delete(s.m, e.hash)
				seen[e.epoch] = true
			}
			e = next
		}
		s.mu.Unlock()
	}
	if len(seen) > 0 {
		c.orphaned.Add(int64(len(seen)))
	}
}

// Stats is a point-in-time snapshot of the cache's counters.
type Stats struct {
	// Entries and Bytes are the current footprint (bytes approximate).
	Entries int
	Bytes   int64
	// Hits, Misses, Evictions are cumulative since construction.
	Hits      int64
	Misses    int64
	Evictions int64
	// OrphanedEpochs counts distinct epochs that still held entries when
	// a purge dropped them.
	OrphanedEpochs int64
}

// HitRate returns Hits / (Hits + Misses), or 0 before any lookup.
func (st Stats) HitRate() float64 {
	total := st.Hits + st.Misses
	if total == 0 {
		return 0
	}
	return float64(st.Hits) / float64(total)
}

// Stats returns the current counters. A nil cache reports zeros.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	st := Stats{
		Hits:           c.hits.Load(),
		Misses:         c.misses.Load(),
		Evictions:      c.evictions.Load(),
		OrphanedEpochs: c.orphaned.Load(),
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Entries += len(s.m)
		st.Bytes += s.bytes
		s.mu.Unlock()
	}
	return st
}
