package yask

import (
	"context"

	"github.com/yask-engine/yask/internal/core"
	"github.com/yask-engine/yask/internal/object"
)

// RankStep is one piece of a missing object's rank profile: the object
// holds Rank for textual weights in [FromWt, ToWt).
type RankStep struct {
	FromWt, ToWt float64
	Rank         int
}

// RankProfile returns the exact rank of a missing object as a step
// function of the textual weight — the analysis behind the demo's
// explanation panel, showing the user *where* in the weight space the
// object would surface.
func (e *Engine) RankProfile(q Query, missing ObjectID) ([]RankStep, error) {
	return e.RankProfileCtx(context.Background(), q, missing)
}

// RankProfileCtx is RankProfile under a context; see TopKCtx for the
// cancellation contract.
func (e *Engine) RankProfileCtx(ctx context.Context, q Query, missing ObjectID) ([]RankStep, error) {
	sq, err := e.buildQuery(q)
	if err != nil {
		return nil, err
	}
	steps, err := e.core.WeightProfileCtx(ctx, sq, object.ID(missing))
	if err != nil {
		return nil, err
	}
	out := make([]RankStep, len(steps))
	for i, s := range steps {
		out[i] = RankStep{FromWt: s.From, ToWt: s.To, Rank: s.Rank}
	}
	return out, nil
}

// KeywordSuggestion is one single-keyword edit and the rank the missing
// objects would reach under it.
type KeywordSuggestion struct {
	Keyword string
	// Add is true for inserting the keyword, false for removing it.
	Add bool
	// RankAfter is the worst missing-object rank under the edit;
	// Improvement is how many positions the edit gains.
	RankAfter, Improvement int
}

// SuggestKeywords evaluates every single-keyword edit over the
// candidate universe and returns them best-first — the "which keyword
// should I change?" analysis of the explanation panel.
func (e *Engine) SuggestKeywords(q Query, missing []ObjectID) ([]KeywordSuggestion, error) {
	return e.SuggestKeywordsCtx(context.Background(), q, missing)
}

// SuggestKeywordsCtx is SuggestKeywords under a context; see TopKCtx
// for the cancellation contract.
func (e *Engine) SuggestKeywordsCtx(ctx context.Context, q Query, missing []ObjectID) ([]KeywordSuggestion, error) {
	sq, err := e.buildQuery(q)
	if err != nil {
		return nil, err
	}
	impacts, err := e.core.KeywordImpactsCtx(ctx, sq, toInternalIDs(missing))
	if err != nil {
		return nil, err
	}
	out := make([]KeywordSuggestion, len(impacts))
	for i, im := range impacts {
		out[i] = KeywordSuggestion{
			Keyword:     e.vocab.Word(im.Keyword),
			Add:         im.Add,
			RankAfter:   im.RankAfter,
			Improvement: im.Improvement,
		}
	}
	return out, nil
}

// BestRefinement is the outcome of WhyNotBest.
type BestRefinement struct {
	// Model names the winning refinement: "preference", "keyword", or
	// "combined".
	Model string
	// Query is the winning refined query, ready to run.
	Query Query
	// Penalty is the winner's penalty; PreferencePenalty and
	// KeywordPenalty are the single-model optima for comparison.
	Penalty, PreferencePenalty, KeywordPenalty float64
	// RankBefore/RankAfter are the worst missing ranks under the
	// initial and refined query.
	RankBefore, RankAfter int
}

// WhyNotBest runs both refinement models (and their composition, per
// the demo's "apply the two refinement functions simultaneously") and
// returns the lowest-penalty refined query.
func (e *Engine) WhyNotBest(q Query, missing []ObjectID, opts RefineOptions) (*BestRefinement, error) {
	return e.WhyNotBestCtx(context.Background(), q, missing, opts)
}

// WhyNotBestCtx is WhyNotBest under a context; see TopKCtx for the
// cancellation contract.
func (e *Engine) WhyNotBestCtx(ctx context.Context, q Query, missing []ObjectID, opts RefineOptions) (*BestRefinement, error) {
	sq, err := e.buildQuery(q)
	if err != nil {
		return nil, err
	}
	best, err := e.core.RefineBestCtx(ctx, sq, toInternalIDs(missing), opts.lambda())
	if err != nil {
		return nil, err
	}
	return &BestRefinement{
		Model:             best.Model.String(),
		Query:             e.publicQuery(best.Refined),
		Penalty:           best.Penalty,
		PreferencePenalty: best.PreferencePenalty,
		KeywordPenalty:    best.KeywordPenalty,
		RankBefore:        best.RankBefore,
		RankAfter:         best.RankAfter,
	}, nil
}

// ensure core types referenced in docs stay imported even if the
// wrappers above change shape.
var _ = core.DefaultLambda
