package yask

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// TestDurableEnginePublicAPI drives the durability lifecycle through
// the public surface: boot a durable engine, mutate it, kill it
// (Close), reopen the same directory, and check the recovered engine
// answers exactly like the one that went down.
func TestDurableEnginePublicAPI(t *testing.T) {
	dir := t.TempDir()
	opts := EngineOptions{DataDir: dir, Fsync: "always"}

	e, err := NewEngineWith(liveTestObjects(), opts)
	if err != nil {
		t.Fatal(err)
	}
	id, err := e.Insert(Object{Name: "epsilon", X: 0.1, Y: 0.1, Keywords: []string{"coffee", "wifi"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Remove(1); err != nil {
		t.Fatal(err)
	}
	q := Query{X: 0.1, Y: 0.1, Keywords: []string{"coffee", "wifi"}, K: 3}
	want, err := e.TopK(q)
	if err != nil {
		t.Fatal(err)
	}
	d := e.Stats().Durability
	if d == nil {
		t.Fatal("durable engine reports no durability stats")
	}
	if d.Dir != dir || d.Fsync != "always" || d.WalAppends != 2 || d.LastLSN != 2 {
		t.Fatalf("durability stats: %+v", d)
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if d = e.Stats().Durability; d.LastCheckpoint != 2 || d.SinceCheckpoint != 0 {
		t.Fatalf("post-checkpoint stats: %+v", d)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Insert(Object{Name: "late", X: 0, Y: 0, Keywords: []string{"x"}}); err == nil {
		t.Fatal("Insert after Close succeeded")
	}

	// Reopen: the constructor's objects seed first boot only, so hand it
	// a decoy — recovery must come from the checkpoint and WAL.
	re, err := NewEngineWith([]Object{{Name: "decoy", X: 99, Y: 99, Keywords: []string{"decoy"}}}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != e.Len() || re.LiveLen() != e.LiveLen() {
		t.Fatalf("recovered Len %d/%d, want %d/%d", re.Len(), re.LiveLen(), e.Len(), e.LiveLen())
	}
	got, err := re.TopK(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("recovered TopK %v, want %v", got, want)
	}
	for i := range want {
		if got[i].ID != want[i].ID || got[i].Score != want[i].Score {
			t.Fatalf("recovered result %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	next, err := re.Insert(Object{Name: "zeta", X: 2, Y: 2, Keywords: []string{"tea"}})
	if err != nil {
		t.Fatal(err)
	}
	if next != id+1 {
		t.Fatalf("post-recovery insert got ID %d, want %d", next, id+1)
	}
}

// TestMmapArenasPublicAPI drives the arena persistence lifecycle
// through the public surface: the ArenaStats section must be mapped
// through (not dropped) by EngineStats, prove the reboot skipped the
// rebuild, and the mapped engine must answer like the one that wrote
// the arenas.
func TestMmapArenasPublicAPI(t *testing.T) {
	dir := t.TempDir()
	opts := EngineOptions{DataDir: dir, Fsync: "always", MmapArenas: true}

	e, err := NewEngineWith(liveTestObjects(), opts)
	if err != nil {
		t.Fatal(err)
	}
	q := Query{X: 0.1, Y: 0.1, Keywords: []string{"coffee", "wifi"}, K: 3}
	want, err := e.TopK(q)
	if err != nil {
		t.Fatal(err)
	}
	a := e.Stats().Durability.Arena
	if a == nil {
		t.Fatal("MmapArenas engine reports no arena stats")
	}
	if !a.Enabled || a.MmapBoot || a.SetsWritten != 1 || a.BytesWritten == 0 {
		t.Fatalf("first-boot arena stats: %+v", a)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopening with the same seed objects (the normal operator pattern
	// — yaskd reloads the same dataset) re-interns the same vocabulary,
	// so the arena's embedded labeling pins cleanly and boot maps.
	re, err := NewEngineWith(liveTestObjects(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	a = re.Stats().Durability.Arena
	if !a.MmapBoot || !a.RebuildSkipped || a.MappedNow != 2 || a.FallbackReason != "" {
		t.Fatalf("mmap-boot arena stats: %+v", a)
	}
	got, err := re.TopK(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("mapped TopK %v, want %v", got, want)
	}
	for i := range want {
		if got[i].ID != want[i].ID || got[i].Score != want[i].Score {
			t.Fatalf("mapped result %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if _, err := re.Insert(Object{Name: "thaw", X: 0.2, Y: 0.2, Keywords: []string{"tea"}}); err != nil {
		t.Fatal(err)
	}
	if a = re.Stats().Durability.Arena; a.MappedNow != 0 {
		t.Fatalf("after mutation %d families still mapped", a.MappedNow)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopening with a conflicting seed vocabulary cannot pin the
	// arena's labeling: boot must fall back to a rebuild with a recorded
	// reason and still answer correctly — never map wrongly.
	dec, err := NewEngineWith([]Object{{Name: "decoy", X: 99, Y: 99, Keywords: []string{"decoy"}}}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer dec.Close()
	a = dec.Stats().Durability.Arena
	if a.MmapBoot || a.FallbackReason == "" {
		t.Fatalf("conflicting-vocabulary boot arena stats: %+v", a)
	}
	if n := dec.LiveLen(); n != len(liveTestObjects())+1 {
		t.Fatalf("fallback boot recovered %d live objects", n)
	}
}

func TestCheckpointOnMemoryEngineFails(t *testing.T) {
	e, err := NewEngine(liveTestObjects())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Checkpoint(); !errors.Is(err, ErrNotDurable) {
		t.Fatalf("Checkpoint on memory engine: %v", err)
	}
	if e.Stats().Durability != nil {
		t.Fatal("memory engine reports durability stats")
	}
	if err := e.Close(); err != nil {
		t.Fatalf("Close on memory engine: %v", err)
	}
}

func TestDurableEngineRejectsBadOptions(t *testing.T) {
	if _, err := NewEngineWith(liveTestObjects(), EngineOptions{DataDir: t.TempDir(), Fsync: "sometimes"}); err == nil {
		t.Fatal("bad fsync policy accepted")
	}
	// An unusable data directory is an error, not a panic. (A missing
	// one is fine — it gets created — so point DataDir at a file.)
	bad := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(bad, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngineWith(liveTestObjects(), EngineOptions{DataDir: bad}); err == nil {
		t.Fatal("file as data dir accepted")
	}
}
