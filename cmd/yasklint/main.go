// Command yasklint runs the engine's invariant analyzers (internal/
// lint) over the packages matched by its arguments, ./... by default.
// It prints findings in go vet style, or as a JSON array with -json,
// and exits 1 when there are findings, 2 when the load itself fails.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/yask-engine/yask/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("yasklint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array instead of vet-style lines")
	list := fs.Bool("analyzers", false, "list the analyzers in the suite and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: yasklint [-json] [packages]\n\n")
		fmt.Fprintf(stderr, "Runs the YASK invariant analyzers over the given package patterns\n(default ./...). Exit status: 0 clean, 1 findings, 2 load failure.\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-20s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	diags, err := lint.Run(".", fs.Args()...)
	if err != nil {
		fmt.Fprintln(stderr, "yasklint:", err)
		return 2
	}

	if *jsonOut {
		findings := make([]jsonFinding, 0, len(diags))
		for _, d := range diags {
			findings = append(findings, jsonFinding{
				File: d.Pos.Filename, Line: d.Pos.Line, Column: d.Pos.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(stderr, "yasklint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// jsonFinding is the -json output shape, one element per finding.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}
