package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestAnalyzersFlag lists the suite; every analyzer must appear.
func TestAnalyzersFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-analyzers"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, name := range []string{"hotpath", "snapshotdiscipline", "walfirst", "publishdiscipline", "senterr", "atomicwrite"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("analyzer %s missing from -analyzers output", name)
		}
	}
}

// TestJSONOutput runs the suite over a small clean package with -json:
// the output must be a valid JSON array (empty on a clean tree), and
// the exit status 0.
func TestJSONOutput(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-json", "../../internal/geo/..."}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s\nstdout: %s", code, errb.String(), out.String())
	}
	var findings []jsonFinding
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, out.String())
	}
	if len(findings) != 0 {
		t.Errorf("expected a clean run, got %d findings", len(findings))
	}
}
