// Command yaskbench regenerates the experiment tables of DESIGN.md's
// experiment index (E1–E10): query-engine comparisons, index
// construction, why-not refinement latency and quality, λ sweeps,
// scalability, HTTP round trips, the concurrent batch executor, and
// the sharded scatter-gather executor.
//
// Usage:
//
//	yaskbench              # all experiments, quick scale
//	yaskbench -exp e3,e5   # selected experiments
//	yaskbench -full        # paper-shaped dataset sizes (slow)
//	yaskbench -json        # machine-readable hot-path snapshot
//
// The -json mode measures the hot-path suite (warm top-k latency, node
// accesses, allocs/query, batch throughput, and per-shard-count rows)
// and emits one JSON document; BENCH_baseline.json at the repo root is
// a checked-in snapshot of it, the reference future PRs diff against.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/yask-engine/yask/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiment IDs (e1..e10) or 'all'")
	full := flag.Bool("full", false, "run at paper-shaped scale (much slower)")
	jsonOut := flag.Bool("json", false, "emit the machine-readable hot-path snapshot instead of tables")
	flag.Parse()

	scale := bench.Quick
	if *full {
		scale = bench.Full
	}

	if *jsonOut {
		if err := bench.WriteJSONReport(os.Stdout, scale); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	want := map[string]bool{}
	if *exp != "all" {
		for _, id := range strings.Split(*exp, ",") {
			want[strings.TrimSpace(strings.ToLower(id))] = true
		}
	}

	ran := 0
	for _, e := range bench.Experiments {
		if *exp != "all" && !want[e.ID] {
			continue
		}
		if ran > 0 {
			fmt.Println()
		}
		e.Run(os.Stdout, scale)
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matched %q; available:", *exp)
		for _, e := range bench.Experiments {
			fmt.Fprintf(os.Stderr, " %s", e.ID)
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(2)
	}
}
