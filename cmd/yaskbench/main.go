// Command yaskbench runs the experiment suite (E1–E16) against the
// paper's workloads: query-engine comparisons, index
// construction, why-not refinement latency and quality, λ sweeps,
// scalability, HTTP round trips, the concurrent batch executor, the
// sharded scatter-gather executor, the keyword-signature pruning
// ablation, the durability (WAL + checkpoint) cost sweep, the result
// cache under Zipfian repeat traffic, and the mmap arena boot path, and the cancellation-overhead check.
//
// Usage:
//
//	yaskbench              # all experiments, quick scale
//	yaskbench -exp e3,e5   # selected experiments
//	yaskbench -full        # paper-shaped dataset sizes (slow)
//	yaskbench -json        # machine-readable hot-path snapshot
//	yaskbench -json -signatures both
//	                       # e12 rows for the signature AND exact paths
//	yaskbench -json -o bench.json -baseline BENCH_baseline.json
//	                       # CI bench-smoke: measure, save, gate
//
// The -json mode measures the hot-path suite (warm top-k latency, node
// accesses, allocs/query, batch throughput, per-shard-count rows, and
// the skewed-dataset balance sweep) and emits one JSON document;
// BENCH_baseline.json at the repo root is a checked-in snapshot of it,
// the reference future PRs diff against. With -baseline, the fresh
// report is diffed against that snapshot and the process exits non-zero
// if any allocs/op row the baseline records as zero regressed — the CI
// gate protecting the zero-allocation hot paths.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/yask-engine/yask/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiment IDs (e1..e16) or 'all'")
	full := flag.Bool("full", false, "run at paper-shaped scale (much slower)")
	jsonOut := flag.Bool("json", false, "emit the machine-readable hot-path snapshot instead of tables")
	out := flag.String("o", "", "write the -json report to this file instead of stdout")
	baseline := flag.String("baseline", "", "diff the -json report against this baseline snapshot; exit 1 if a zero-allocs/op row regressed")
	signatures := flag.String("signatures", "both", "signature configurations the -json report measures: on, off, or both (both exercises the signature path and the exact path in one run)")
	flag.Parse()

	sigMode, err := bench.ParseSigMode(*signatures)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *baseline != "" && sigMode != bench.SigBoth {
		// The baseline gate hard-fails on any zero-allocs row missing
		// from the current report, and a single-mode run necessarily
		// omits the other mode's e12 rows.
		fmt.Fprintln(os.Stderr, "yaskbench: -baseline requires -signatures=both (the gate checks the e12 rows of both paths)")
		os.Exit(2)
	}

	scale := bench.Quick
	if *full {
		scale = bench.Full
	}

	if *jsonOut || *baseline != "" {
		runJSON(scale, sigMode, *out, *baseline)
		return
	}

	want := map[string]bool{}
	if *exp != "all" {
		for _, id := range strings.Split(*exp, ",") {
			want[strings.TrimSpace(strings.ToLower(id))] = true
		}
	}

	ran := 0
	for _, e := range bench.Experiments {
		if *exp != "all" && !want[e.ID] {
			continue
		}
		if ran > 0 {
			fmt.Println()
		}
		e.Run(os.Stdout, scale)
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matched %q; available:", *exp)
		for _, e := range bench.Experiments {
			fmt.Fprintf(os.Stderr, " %s", e.ID)
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(2)
	}
}

// runJSON measures the machine-readable snapshot once, writes it to the
// requested destination, and optionally gates it against a baseline.
func runJSON(scale bench.Scale, sigMode bench.SigMode, out, baseline string) {
	rep := bench.MeasureReportMode(scale, sigMode)

	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if baseline == "" {
		return
	}
	base, err := bench.LoadReport(baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	summary, regressions := bench.CompareBaseline(rep, base)
	for _, line := range summary {
		fmt.Fprintln(os.Stderr, line)
	}
	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "\nALLOCATION REGRESSIONS vs %s:\n", baseline)
		for _, line := range regressions {
			fmt.Fprintf(os.Stderr, "  %s\n", line)
		}
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "bench-smoke: all zero-allocs/op rows held vs %s\n", baseline)
}
