// Command yaskbench regenerates the experiment tables of DESIGN.md's
// experiment index (E1–E7): query-engine comparisons, index
// construction, why-not refinement latency and quality, λ sweeps,
// scalability, and HTTP round trips.
//
// Usage:
//
//	yaskbench              # all experiments, quick scale
//	yaskbench -exp e3,e5   # selected experiments
//	yaskbench -full        # paper-shaped dataset sizes (slow)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/yask-engine/yask/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiment IDs (e1..e7) or 'all'")
	full := flag.Bool("full", false, "run at paper-shaped scale (much slower)")
	flag.Parse()

	scale := bench.Quick
	if *full {
		scale = bench.Full
	}

	want := map[string]bool{}
	if *exp != "all" {
		for _, id := range strings.Split(*exp, ",") {
			want[strings.TrimSpace(strings.ToLower(id))] = true
		}
	}

	ran := 0
	for _, e := range bench.Experiments {
		if *exp != "all" && !want[e.ID] {
			continue
		}
		if ran > 0 {
			fmt.Println()
		}
		e.Run(os.Stdout, scale)
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matched %q; available:", *exp)
		for _, e := range bench.Experiments {
			fmt.Fprintf(os.Stderr, " %s", e.ID)
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(2)
	}
}
