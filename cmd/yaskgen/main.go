// Command yaskgen generates synthetic spatial keyword datasets in the
// formats yaskd and the examples consume.
//
// Usage:
//
//	yaskgen -n 100000 -seed 7 -out objects.json
//	yaskgen -hk -out hotels.csv          # the 539-hotel demo dataset
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/yask-engine/yask/internal/dataset"
)

func main() {
	n := flag.Int("n", 10000, "number of objects")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("out", "objects.json", "output file (.json or .csv)")
	hk := flag.Bool("hk", false, "emit the built-in 539-hotel HK demo dataset instead")
	spatial := flag.String("spatial", "clustered", "spatial layout: clustered or uniform")
	clusters := flag.Int("clusters", 16, "number of spatial clusters (clustered layout)")
	vocabSize := flag.Int("vocab", 400, "vocabulary size")
	minKw := flag.Int("min-keywords", 3, "minimum keywords per object")
	maxKw := flag.Int("max-keywords", 12, "maximum keywords per object")
	flag.Parse()

	var (
		ds  *dataset.Dataset
		err error
	)
	if *hk {
		ds = dataset.HKHotels()
	} else {
		cfg := dataset.DefaultConfig(*n, *seed)
		cfg.Clusters = *clusters
		cfg.VocabSize = *vocabSize
		cfg.MinKeywords = *minKw
		cfg.MaxKeywords = *maxKw
		switch *spatial {
		case "clustered":
			cfg.Spatial = dataset.Clustered
		case "uniform":
			cfg.Spatial = dataset.Uniform
		default:
			fmt.Fprintf(os.Stderr, "unknown -spatial %q (want clustered or uniform)\n", *spatial)
			os.Exit(2)
		}
		ds, err = dataset.Generate(cfg)
		if err != nil {
			log.Fatal(err)
		}
	}
	if err := ds.SaveFile(*out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s: %s\n", *out, ds.Describe())
}
