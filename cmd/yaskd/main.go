// Command yaskd serves the YASK web service: the spatial keyword top-k
// query engine and why-not question answering engine behind a JSON API
// and an embedded map UI (the browser–server deployment of the paper's
// Fig. 1).
//
// Usage:
//
//	yaskd [-addr :8080] [-data hotels.json] [-session-ttl 30m] [-shards 4]
//
// Without -data it serves the built-in demo dataset, a deterministic
// synthetic stand-in for the paper's 539 Hong Kong hotels. With
// -shards > 1 the engine partitions the collection into that many
// spatial shards and executes queries by scatter-gather (identical
// results; per-shard statistics on GET /api/stats).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"github.com/yask-engine/yask"
	"github.com/yask-engine/yask/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	data := flag.String("data", "", "dataset file (.json or .csv); empty serves the HK hotel demo")
	ttl := flag.Duration("session-ttl", server.DefaultSessionTTL, "idle lifetime of cached query sessions")
	shards := flag.Int("shards", 1, "spatial shards to partition the engine into (1 = single index)")
	flag.Parse()

	opts := yask.EngineOptions{Shards: *shards}
	var (
		engine *yask.Engine
		err    error
	)
	if *data == "" {
		engine = yask.HKDemoEngineWith(opts)
		log.Printf("serving built-in demo dataset (%d HK hotels, %d shard(s))", engine.Len(), engine.Stats().Shards)
	} else {
		engine, err = yask.LoadEngineWith(*data, opts)
		if err != nil {
			log.Fatalf("loading %s: %v", *data, err)
		}
		log.Printf("serving %s (%d objects, %d shard(s))", *data, engine.Len(), engine.Stats().Shards)
	}

	srv := server.New(engine, server.Config{SessionTTL: *ttl})
	log.Printf("YASK listening on %s — open http://localhost%s/", *addr, portSuffix(*addr))
	if err := http.ListenAndServe(*addr, srv); err != nil {
		log.Fatal(err)
	}
}

func portSuffix(addr string) string {
	for i := len(addr) - 1; i >= 0; i-- {
		if addr[i] == ':' {
			return addr[i:]
		}
	}
	return fmt.Sprintf(":%s", addr)
}
