// Command yaskd serves the YASK web service: the spatial keyword top-k
// query engine and why-not question answering engine behind a JSON API
// and an embedded map UI (the browser–server deployment of the paper's
// Fig. 1).
//
// Usage:
//
//	yaskd [-addr :8080] [-data hotels.json] [-session-ttl 30m]
//	      [-shards 4] [-splitter str] [-rebalance-factor 1.5]
//	      [-signatures=false] [-cache=off] [-cache-entries 4096]
//	      [-cache-bytes 67108864] [-data-dir ./yask-data] [-fsync always]
//	      [-fsync-interval 100ms] [-checkpoint-every 1000] [-mmap-arenas]
//
// Without -data it serves the built-in demo dataset, a deterministic
// synthetic stand-in for the paper's 539 Hong Kong hotels. With
// -shards > 1 the engine partitions the collection into that many
// spatial shards and executes queries by scatter-gather (identical
// results; per-shard statistics on GET /api/stats). -splitter selects
// the partitioning strategy: "grid" freezes a uniform grid, "str"
// sort-tile-recursive-packs a sample of the data into balanced
// rectangles (even shard populations on skewed datasets). A non-zero
// -rebalance-factor enables online rebalancing: when max/mean shard
// population exceeds the factor, the engine re-splits in the background
// and publishes the new partition atomically — watch the live
// imbalanceFactor and per-shard balance fields on GET /api/stats.
//
// -signatures (default true) controls the keyword-signature pruning
// layer baked into the index arenas; answers are byte-identical either
// way, and the live hit rate (sigHitRate, plus per-shard probe/hit
// counters) is reported on GET /api/stats.
//
// The epoch-keyed result cache is on by default: repeated queries
// against an unchanged snapshot are answered from memory, and every
// refresh/rebalance/recovery silently orphans stale entries, so answers
// never change. -cache=off disables it; -cache-entries and -cache-bytes
// bound it (0 = defaults: 4096 entries, 64 MiB). Live hit rate and
// sizes are in the cache section of GET /api/stats.
//
// GET /api/subscribe registers a continuous top-k query (parameters
// x, y, k, keywords, and optional wt/similarity in the URL) and streams
// result updates as server-sent events; see the README for a curl
// example.
//
// -data-dir enables crash-safe durability: every accepted insert and
// remove is appended to a write-ahead log in that directory before it
// mutates the engine, and checkpoints snapshot the whole collection.
// On startup the engine recovers from the newest valid checkpoint plus
// the log; -data/-demo seed the very first boot only. -fsync selects
// the acknowledgement policy (always, interval, none), -fsync-interval
// the flush period of "interval", and -checkpoint-every the automatic
// checkpoint cadence (0 = only POST /api/checkpoint and shutdown).
// On SIGINT/SIGTERM the server drains in-flight requests, writes a
// final checkpoint, and closes the log.
//
// -mmap-arenas (requires -data-dir, single shard) additionally persists
// the frozen index arenas next to every checkpoint and boots by
// memory-mapping them instead of rebuilding the indexes; a damaged
// arena file silently falls back to the ordinary rebuild. The arena
// section of GET /api/stats shows whether the current boot mapped or
// rebuilt. See docs/FORMATS.md for the file format.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"github.com/yask-engine/yask"
	"github.com/yask-engine/yask/internal/server"
)

// shutdownTimeout bounds the in-flight request drain on SIGINT/SIGTERM;
// the final checkpoint runs after the drain, whatever its outcome.
const shutdownTimeout = 10 * time.Second

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	data := flag.String("data", "", "dataset file (.json or .csv); empty serves the HK hotel demo")
	ttl := flag.Duration("session-ttl", server.DefaultSessionTTL, "idle lifetime of cached query sessions")
	shards := flag.Int("shards", 1, "spatial shards to partition the engine into (1 = single index)")
	splitter := flag.String("splitter", "grid", "sharding strategy: grid (uniform grid over the data space) or str (sort-tile-recursive packing of a data sample; balances skewed datasets)")
	rebalance := flag.Float64("rebalance-factor", 0, "enable online shard rebalancing when the max/mean shard population ratio exceeds this factor (must be > 1; 0 disables)")
	signatures := flag.Bool("signatures", true, "enable the keyword-signature pruning layer (constant-time bitmap bounds before exact keyword merge-walks; identical answers either way)")
	cache := flag.String("cache", "on", "epoch-keyed result cache: on or off (identical answers either way)")
	cacheEntries := flag.Int("cache-entries", 0, "result-cache entry bound (0 = 4096)")
	cacheBytes := flag.Int64("cache-bytes", 0, "result-cache byte bound (0 = 64 MiB)")
	dataDir := flag.String("data-dir", "", "directory for the write-ahead log and checkpoints; empty runs memory-only")
	fsync := flag.String("fsync", "always", "WAL acknowledgement policy: always (fsync before every mutation returns), interval (fsync on a timer), or none (leave flushing to the OS)")
	fsyncInterval := flag.Duration("fsync-interval", 0, "flush period of -fsync interval (0 = 100ms default)")
	checkpointEvery := flag.Int("checkpoint-every", 0, "write a checkpoint automatically after this many logged mutations (0 = only POST /api/checkpoint and shutdown)")
	mmapArenas := flag.Bool("mmap-arenas", false, "persist index arenas alongside checkpoints and boot by memory-mapping them instead of rebuilding (requires -data-dir; single shard only; damaged arenas fall back to a rebuild)")
	flag.Parse()

	if *splitter != "grid" && *splitter != "str" {
		log.Fatalf("unknown -splitter %q (want grid or str)", *splitter)
	}
	if *rebalance != 0 && *rebalance <= 1 {
		log.Fatalf("-rebalance-factor %v must exceed 1 (max/mean imbalance is never below 1)", *rebalance)
	}
	if *cache != "on" && *cache != "off" {
		log.Fatalf("unknown -cache %q (want on or off)", *cache)
	}
	opts := yask.EngineOptions{
		Shards: *shards, Splitter: *splitter, RebalanceFactor: *rebalance,
		DisableSignatures: !*signatures,
		DisableCache:      *cache == "off",
		CacheEntries:      *cacheEntries, CacheBytes: *cacheBytes,
		DataDir: *dataDir, Fsync: *fsync,
		FsyncInterval: *fsyncInterval, CheckpointEvery: *checkpointEvery,
		MmapArenas: *mmapArenas,
	}
	var (
		engine *yask.Engine
		err    error
	)
	if *data == "" {
		engine, err = yask.OpenHKDemoEngine(opts)
		if err != nil {
			log.Fatalf("opening engine: %v", err)
		}
		log.Printf("serving built-in demo dataset (%d HK hotels, %d shard(s))", engine.Len(), engine.Stats().Shards)
	} else {
		engine, err = yask.LoadEngineWith(*data, opts)
		if err != nil {
			log.Fatalf("loading %s: %v", *data, err)
		}
		log.Printf("serving %s (%d objects, %d shard(s))", *data, engine.Len(), engine.Stats().Shards)
	}
	if engine.Stats().Signatures {
		log.Printf("keyword-signature pruning enabled (256-bit arena bitmaps; hit rate on GET /api/stats)")
	} else {
		log.Printf("keyword-signature pruning disabled (-signatures=false): exact keyword merge-walks on every textual evaluation")
	}
	if c := engine.Stats().Cache; c != nil {
		log.Printf("result cache enabled (epoch-keyed; hit rate on GET /api/stats); continuous queries on GET /api/subscribe")
	} else {
		log.Printf("result cache disabled (-cache=off): every query re-traverses the indexes")
	}
	if d := engine.Stats().Durability; d != nil {
		log.Printf("durability on: %s (fsync %s, %d records replayed, checkpoint at LSN %d)",
			d.Dir, d.Fsync, d.ReplayedRecords, d.LastCheckpoint)
	}

	srv := server.New(engine, server.Config{SessionTTL: *ttl})
	httpSrv := &http.Server{
		Addr:    *addr,
		Handler: srv,
		// A slow or stalled client must not pin a connection (and its
		// goroutine) forever; the write timeout also bounds the largest
		// batch response we'll stream. The /api/subscribe handler clears
		// its own write deadline — long-lived event streams are its
		// point — and relies on the engine's slow-client disconnect
		// instead.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() {
		log.Printf("YASK listening on %s — open http://localhost%s/", *addr, portSuffix(*addr))
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("shutting down: draining in-flight requests (up to %s)", shutdownTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		log.Printf("drain incomplete: %v", err)
	}
	if err := engine.Checkpoint(); err != nil && !errors.Is(err, yask.ErrNotDurable) {
		log.Printf("final checkpoint: %v", err)
	}
	if err := engine.Close(); err != nil {
		log.Printf("closing engine: %v", err)
	}
	log.Printf("bye")
}

func portSuffix(addr string) string {
	for i := len(addr) - 1; i >= 0; i-- {
		if addr[i] == ':' {
			return addr[i:]
		}
	}
	return fmt.Sprintf(":%s", addr)
}
