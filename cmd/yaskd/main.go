// Command yaskd serves the YASK web service: the spatial keyword top-k
// query engine and why-not question answering engine behind a JSON API
// and an embedded map UI (the browser–server deployment of the paper's
// Fig. 1).
//
// Usage:
//
//	yaskd [-addr :8080] [-data hotels.json] [-session-ttl 30m]
//	      [-shards 4] [-splitter str] [-rebalance-factor 1.5]
//	      [-signatures=false]
//
// Without -data it serves the built-in demo dataset, a deterministic
// synthetic stand-in for the paper's 539 Hong Kong hotels. With
// -shards > 1 the engine partitions the collection into that many
// spatial shards and executes queries by scatter-gather (identical
// results; per-shard statistics on GET /api/stats). -splitter selects
// the partitioning strategy: "grid" freezes a uniform grid, "str"
// sort-tile-recursive-packs a sample of the data into balanced
// rectangles (even shard populations on skewed datasets). A non-zero
// -rebalance-factor enables online rebalancing: when max/mean shard
// population exceeds the factor, the engine re-splits in the background
// and publishes the new partition atomically — watch the live
// imbalanceFactor and per-shard balance fields on GET /api/stats.
//
// -signatures (default true) controls the keyword-signature pruning
// layer baked into the index arenas; answers are byte-identical either
// way, and the live hit rate (sigHitRate, plus per-shard probe/hit
// counters) is reported on GET /api/stats.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"github.com/yask-engine/yask"
	"github.com/yask-engine/yask/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	data := flag.String("data", "", "dataset file (.json or .csv); empty serves the HK hotel demo")
	ttl := flag.Duration("session-ttl", server.DefaultSessionTTL, "idle lifetime of cached query sessions")
	shards := flag.Int("shards", 1, "spatial shards to partition the engine into (1 = single index)")
	splitter := flag.String("splitter", "grid", "sharding strategy: grid (uniform grid over the data space) or str (sort-tile-recursive packing of a data sample; balances skewed datasets)")
	rebalance := flag.Float64("rebalance-factor", 0, "enable online shard rebalancing when the max/mean shard population ratio exceeds this factor (must be > 1; 0 disables)")
	signatures := flag.Bool("signatures", true, "enable the keyword-signature pruning layer (constant-time bitmap bounds before exact keyword merge-walks; identical answers either way)")
	flag.Parse()

	if *splitter != "grid" && *splitter != "str" {
		log.Fatalf("unknown -splitter %q (want grid or str)", *splitter)
	}
	if *rebalance != 0 && *rebalance <= 1 {
		log.Fatalf("-rebalance-factor %v must exceed 1 (max/mean imbalance is never below 1)", *rebalance)
	}
	opts := yask.EngineOptions{
		Shards: *shards, Splitter: *splitter, RebalanceFactor: *rebalance,
		DisableSignatures: !*signatures,
	}
	var (
		engine *yask.Engine
		err    error
	)
	if *data == "" {
		engine = yask.HKDemoEngineWith(opts)
		log.Printf("serving built-in demo dataset (%d HK hotels, %d shard(s))", engine.Len(), engine.Stats().Shards)
	} else {
		engine, err = yask.LoadEngineWith(*data, opts)
		if err != nil {
			log.Fatalf("loading %s: %v", *data, err)
		}
		log.Printf("serving %s (%d objects, %d shard(s))", *data, engine.Len(), engine.Stats().Shards)
	}
	if engine.Stats().Signatures {
		log.Printf("keyword-signature pruning enabled (256-bit arena bitmaps; hit rate on GET /api/stats)")
	} else {
		log.Printf("keyword-signature pruning disabled (-signatures=false): exact keyword merge-walks on every textual evaluation")
	}

	srv := server.New(engine, server.Config{SessionTTL: *ttl})
	log.Printf("YASK listening on %s — open http://localhost%s/", *addr, portSuffix(*addr))
	if err := http.ListenAndServe(*addr, srv); err != nil {
		log.Fatal(err)
	}
}

func portSuffix(addr string) string {
	for i := len(addr) - 1; i >= 0; i-- {
		if addr[i] == ':' {
			return addr[i:]
		}
	}
	return fmt.Sprintf(":%s", addr)
}
