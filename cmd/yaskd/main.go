// Command yaskd serves the YASK web service: the spatial keyword top-k
// query engine and why-not question answering engine behind a JSON API
// and an embedded map UI (the browser–server deployment of the paper's
// Fig. 1).
//
// Usage:
//
//	yaskd [-addr :8080] [-data hotels.json] [-session-ttl 30m]
//	      [-shards 4] [-splitter str] [-rebalance-factor 1.5]
//	      [-signatures=false] [-cache=off] [-cache-entries 4096]
//	      [-cache-bytes 67108864] [-data-dir ./yask-data] [-fsync always]
//	      [-fsync-interval 100ms] [-checkpoint-every 1000] [-mmap-arenas]
//	      [-query-timeout 30s] [-max-inflight 0] [-queue-depth 64]
//	      [-queue-wait 1s]
//
// Without -data it serves the built-in demo dataset, a deterministic
// synthetic stand-in for the paper's 539 Hong Kong hotels. With
// -shards > 1 the engine partitions the collection into that many
// spatial shards and executes queries by scatter-gather (identical
// results; per-shard statistics on GET /api/stats). -splitter selects
// the partitioning strategy: "grid" freezes a uniform grid, "str"
// sort-tile-recursive-packs a sample of the data into balanced
// rectangles (even shard populations on skewed datasets). A non-zero
// -rebalance-factor enables online rebalancing: when max/mean shard
// population exceeds the factor, the engine re-splits in the background
// and publishes the new partition atomically — watch the live
// imbalanceFactor and per-shard balance fields on GET /api/stats.
//
// -signatures (default true) controls the keyword-signature pruning
// layer baked into the index arenas; answers are byte-identical either
// way, and the live hit rate (sigHitRate, plus per-shard probe/hit
// counters) is reported on GET /api/stats.
//
// The epoch-keyed result cache is on by default: repeated queries
// against an unchanged snapshot are answered from memory, and every
// refresh/rebalance/recovery silently orphans stale entries, so answers
// never change. -cache=off disables it; -cache-entries and -cache-bytes
// bound it (0 = defaults: 4096 entries, 64 MiB). Live hit rate and
// sizes are in the cache section of GET /api/stats.
//
// GET /api/subscribe registers a continuous top-k query (parameters
// x, y, k, keywords, and optional wt/similarity in the URL) and streams
// result updates as server-sent events; see the README for a curl
// example.
//
// -data-dir enables crash-safe durability: every accepted insert and
// remove is appended to a write-ahead log in that directory before it
// mutates the engine, and checkpoints snapshot the whole collection.
// On startup the engine recovers from the newest valid checkpoint plus
// the log; -data/-demo seed the very first boot only. -fsync selects
// the acknowledgement policy (always, interval, none), -fsync-interval
// the flush period of "interval", and -checkpoint-every the automatic
// checkpoint cadence (0 = only POST /api/checkpoint and shutdown).
// On SIGINT/SIGTERM the server drains in-flight requests, writes a
// final checkpoint, and closes the log.
//
// Request lifecycle: every query request gets a server-side deadline of
// -query-timeout (0 disables); work past the deadline is abandoned
// cooperatively and answered 503. -max-inflight caps concurrently
// executing queries (0 = unlimited); excess requests wait in a FIFO
// queue of -queue-depth for at most -queue-wait, and everything beyond
// that is shed with 429 + Retry-After. GET /api/healthz is the
// liveness probe; GET /api/readyz reports 503 while the engine is
// still booting (including WAL recovery replay) and again once
// shutdown drain begins, so load balancers route around the process.
// Admission counters are in the admission section of GET /api/stats.
//
// -mmap-arenas (requires -data-dir, single shard) additionally persists
// the frozen index arenas next to every checkpoint and boots by
// memory-mapping them instead of rebuilding the indexes; a damaged
// arena file silently falls back to the ordinary rebuild. The arena
// section of GET /api/stats shows whether the current boot mapped or
// rebuilt. See docs/FORMATS.md for the file format.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/yask-engine/yask"
	"github.com/yask-engine/yask/internal/server"
)

// shutdownTimeout bounds the in-flight request drain on SIGINT/SIGTERM;
// the final checkpoint runs after the drain, whatever its outcome.
const shutdownTimeout = 10 * time.Second

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	data := flag.String("data", "", "dataset file (.json or .csv); empty serves the HK hotel demo")
	ttl := flag.Duration("session-ttl", server.DefaultSessionTTL, "idle lifetime of cached query sessions")
	shards := flag.Int("shards", 1, "spatial shards to partition the engine into (1 = single index)")
	splitter := flag.String("splitter", "grid", "sharding strategy: grid (uniform grid over the data space) or str (sort-tile-recursive packing of a data sample; balances skewed datasets)")
	rebalance := flag.Float64("rebalance-factor", 0, "enable online shard rebalancing when the max/mean shard population ratio exceeds this factor (must be > 1; 0 disables)")
	signatures := flag.Bool("signatures", true, "enable the keyword-signature pruning layer (constant-time bitmap bounds before exact keyword merge-walks; identical answers either way)")
	cache := flag.String("cache", "on", "epoch-keyed result cache: on or off (identical answers either way)")
	cacheEntries := flag.Int("cache-entries", 0, "result-cache entry bound (0 = 4096)")
	cacheBytes := flag.Int64("cache-bytes", 0, "result-cache byte bound (0 = 64 MiB)")
	dataDir := flag.String("data-dir", "", "directory for the write-ahead log and checkpoints; empty runs memory-only")
	fsync := flag.String("fsync", "always", "WAL acknowledgement policy: always (fsync before every mutation returns), interval (fsync on a timer), or none (leave flushing to the OS)")
	fsyncInterval := flag.Duration("fsync-interval", 0, "flush period of -fsync interval (0 = 100ms default)")
	checkpointEvery := flag.Int("checkpoint-every", 0, "write a checkpoint automatically after this many logged mutations (0 = only POST /api/checkpoint and shutdown)")
	mmapArenas := flag.Bool("mmap-arenas", false, "persist index arenas alongside checkpoints and boot by memory-mapping them instead of rebuilding (requires -data-dir; single shard only; damaged arenas fall back to a rebuild)")
	queryTimeout := flag.Duration("query-timeout", 30*time.Second, "per-request deadline for query endpoints; expired work is abandoned cooperatively and answered 503 (0 disables)")
	maxInflight := flag.Int("max-inflight", 0, "cap on concurrently executing query requests; excess waits in the admission queue or is shed with 429 (0 = unlimited)")
	queueDepth := flag.Int("queue-depth", 64, "bound on query requests waiting for an inflight slot when -max-inflight is reached")
	queueWait := flag.Duration("queue-wait", time.Second, "longest a queued query request may wait for a slot before being shed with 429")
	flag.Parse()

	if *splitter != "grid" && *splitter != "str" {
		log.Fatalf("unknown -splitter %q (want grid or str)", *splitter)
	}
	if *rebalance != 0 && *rebalance <= 1 {
		log.Fatalf("-rebalance-factor %v must exceed 1 (max/mean imbalance is never below 1)", *rebalance)
	}
	if *cache != "on" && *cache != "off" {
		log.Fatalf("unknown -cache %q (want on or off)", *cache)
	}
	opts := yask.EngineOptions{
		Shards: *shards, Splitter: *splitter, RebalanceFactor: *rebalance,
		DisableSignatures: !*signatures,
		DisableCache:      *cache == "off",
		CacheEntries:      *cacheEntries, CacheBytes: *cacheBytes,
		DataDir: *dataDir, Fsync: *fsync,
		FsyncInterval: *fsyncInterval, CheckpointEvery: *checkpointEvery,
		MmapArenas: *mmapArenas,
	}
	// Listen before the engine opens: WAL recovery replay can take a
	// while, and during it the process must answer its probes — healthz
	// 200 (alive), readyz 503 (not ready) — instead of refusing
	// connections and getting restarted mid-recovery.
	// atomic.Value requires one consistent concrete type across stores,
	// and the boot gate (*http.ServeMux) and the real server
	// (*server.Server) are different ones — hence the box.
	type handlerBox struct{ h http.Handler }
	var handler atomic.Value // handlerBox: boot gate, swapped for the real server
	boot := http.NewServeMux()
	boot.HandleFunc("GET /api/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"status":"ok"}`)
	})
	boot.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"booting"}`)
	})
	handler.Store(handlerBox{boot})
	httpSrv := &http.Server{
		Addr: *addr,
		Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			handler.Load().(handlerBox).h.ServeHTTP(w, r)
		}),
		// A slow or stalled client must not pin a connection (and its
		// goroutine) forever; the write timeout also bounds the largest
		// batch response we'll stream. The /api/subscribe handler clears
		// its own write deadline — long-lived event streams are its
		// point — and relies on the engine's slow-client disconnect
		// instead.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() {
		log.Printf("YASK listening on %s — open http://localhost%s/", *addr, portSuffix(*addr))
		errCh <- httpSrv.ListenAndServe()
	}()

	var (
		engine *yask.Engine
		err    error
	)
	if *data == "" {
		engine, err = yask.OpenHKDemoEngine(opts)
		if err != nil {
			log.Fatalf("opening engine: %v", err)
		}
		log.Printf("serving built-in demo dataset (%d HK hotels, %d shard(s))", engine.Len(), engine.Stats().Shards)
	} else {
		engine, err = yask.LoadEngineWith(*data, opts)
		if err != nil {
			log.Fatalf("loading %s: %v", *data, err)
		}
		log.Printf("serving %s (%d objects, %d shard(s))", *data, engine.Len(), engine.Stats().Shards)
	}
	if engine.Stats().Signatures {
		log.Printf("keyword-signature pruning enabled (256-bit arena bitmaps; hit rate on GET /api/stats)")
	} else {
		log.Printf("keyword-signature pruning disabled (-signatures=false): exact keyword merge-walks on every textual evaluation")
	}
	if c := engine.Stats().Cache; c != nil {
		log.Printf("result cache enabled (epoch-keyed; hit rate on GET /api/stats); continuous queries on GET /api/subscribe")
	} else {
		log.Printf("result cache disabled (-cache=off): every query re-traverses the indexes")
	}
	if d := engine.Stats().Durability; d != nil {
		log.Printf("durability on: %s (fsync %s, %d records replayed, checkpoint at LSN %d)",
			d.Dir, d.Fsync, d.ReplayedRecords, d.LastCheckpoint)
	}

	if *maxInflight > 0 {
		log.Printf("admission control on: %d inflight, queue %d (wait %s); excess shed with 429", *maxInflight, *queueDepth, *queueWait)
	}
	srv := server.New(engine, server.Config{
		SessionTTL:   *ttl,
		QueryTimeout: *queryTimeout,
		MaxInflight:  *maxInflight,
		QueueDepth:   *queueDepth,
		QueueWait:    *queueWait,
	})
	// Boot finished: swap the gate for the real server. Readiness flips
	// to 200 atomically with query availability.
	handler.Store(handlerBox{srv})

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("shutting down: draining in-flight requests (up to %s)", shutdownTimeout)
	// Flip readiness to 503 and force-close subscription streams first,
	// so Shutdown's drain cannot hang on an idle subscriber.
	srv.StartDrain()
	drainCtx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		log.Printf("drain incomplete: %v", err)
	}
	if err := engine.Checkpoint(); err != nil && !errors.Is(err, yask.ErrNotDurable) {
		log.Printf("final checkpoint: %v", err)
	}
	if err := engine.Close(); err != nil {
		log.Printf("closing engine: %v", err)
	}
	log.Printf("bye")
}

func portSuffix(addr string) string {
	for i := len(addr) - 1; i >= 0; i-- {
		if addr[i] == ':' {
			return addr[i:]
		}
	}
	return fmt.Sprintf(":%s", addr)
}
