// Command yaskcli runs YASK queries and why-not questions from the
// terminal — the demo's interaction loop without the browser.
//
// Usage:
//
//	yaskcli [-data hotels.json] query -x 114.17 -y 22.30 -k 3 -keywords "wifi breakfast"
//	yaskcli [-data hotels.json] explain -x ... -missing 42,117
//	yaskcli [-data hotels.json] whynot -model preference -lambda 0.5 -x ... -missing 42
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"github.com/yask-engine/yask"
)

func main() {
	log.SetFlags(0)
	data := flag.String("data", "", "dataset file (.json or .csv); empty uses the HK hotel demo")
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		usage()
	}

	var (
		engine *yask.Engine
		err    error
	)
	if *data == "" {
		engine = yask.HKDemoEngine()
	} else {
		engine, err = yask.LoadEngine(*data)
		if err != nil {
			log.Fatal(err)
		}
	}

	switch args[0] {
	case "query":
		q, _ := parseQueryFlags(args[1:], false)
		runQuery(engine, q)
	case "explain":
		q, missing := parseQueryFlags(args[1:], true)
		exps, err := engine.Explain(q, missing)
		if err != nil {
			log.Fatal(err)
		}
		for _, ex := range exps {
			fmt.Printf("#%d %s\n  rank %d, score %.4f (SDist %.3f, TSim %.3f), reason: %s\n  %s\n",
				ex.ID, ex.Name, ex.Rank, ex.Score, ex.SDist, ex.TSim, ex.Reason, ex.Detail)
		}
	case "whynot":
		fs := flag.NewFlagSet("whynot", flag.ExitOnError)
		model := fs.String("model", "preference", "refinement model: preference or keyword")
		lambda := fs.Float64("lambda", 0.5, "penalty trade-off λ")
		q, missing := parseQueryFlagSet(fs, args[1:], true)
		opts := yask.RefineOptions{Lambda: *lambda, LambdaIsZero: *lambda == 0}
		switch *model {
		case "preference":
			ref, err := engine.WhyNotPreference(q, missing, opts)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("refined weights ⟨%.4f, %.4f⟩, k=%d (penalty %.4f: Δk=%d, Δw=%.4f)\n",
				ref.Ws, ref.Wt, ref.K, ref.Penalty, ref.DeltaK, ref.DeltaW)
			fmt.Printf("missing object rank: %d → %d\n", ref.RankBefore, ref.RankAfter)
			runQuery(engine, ref.Query)
		case "keyword":
			ref, err := engine.WhyNotKeywords(q, missing, opts)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("refined keywords %v, k=%d (penalty %.4f: Δk=%d, Δdoc=%d; +%v −%v)\n",
				ref.Keywords, ref.K, ref.Penalty, ref.DeltaK, ref.DeltaDoc, ref.Added, ref.Removed)
			fmt.Printf("missing object rank: %d → %d\n", ref.RankBefore, ref.RankAfter)
			runQuery(engine, ref.Query)
		default:
			log.Fatalf("unknown -model %q", *model)
		}
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: yaskcli [-data file] {query|explain|whynot} [flags]")
	os.Exit(2)
}

func parseQueryFlags(args []string, wantMissing bool) (yask.Query, []yask.ObjectID) {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	return parseQueryFlagSet(fs, args, wantMissing)
}

func parseQueryFlagSet(fs *flag.FlagSet, args []string, wantMissing bool) (yask.Query, []yask.ObjectID) {
	x := fs.Float64("x", 114.172, "query x (longitude)")
	y := fs.Float64("y", 22.298, "query y (latitude)")
	k := fs.Int("k", 3, "result size")
	wt := fs.Float64("wt", 0, "textual weight (0 = server default 0.5)")
	keywords := fs.String("keywords", "wifi", "space-separated query keywords")
	missingStr := fs.String("missing", "", "comma-separated missing object IDs")
	if err := fs.Parse(args); err != nil {
		log.Fatal(err)
	}
	q := yask.Query{X: *x, Y: *y, K: *k, Wt: *wt, Keywords: strings.Fields(*keywords)}
	var missing []yask.ObjectID
	if *missingStr != "" {
		for _, part := range strings.Split(*missingStr, ",") {
			id, err := strconv.ParseUint(strings.TrimSpace(part), 10, 32)
			if err != nil {
				log.Fatalf("bad missing ID %q: %v", part, err)
			}
			missing = append(missing, yask.ObjectID(id))
		}
	}
	if wantMissing && len(missing) == 0 {
		log.Fatal("this subcommand needs -missing with at least one object ID")
	}
	return q, missing
}

func runQuery(engine *yask.Engine, q yask.Query) {
	res, err := engine.TopK(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top-%d for %v @ (%.4f, %.4f):\n", q.K, q.Keywords, q.X, q.Y)
	for i, r := range res {
		fmt.Printf("%2d. #%-4d %-30s score %.4f  %v\n", i+1, r.ID, r.Name, r.Score, r.Keywords)
	}
}
